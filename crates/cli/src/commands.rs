//! The `anomex` subcommands.

use std::fs;
use std::io::Read as _;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use anomex_core::{
    latency_percentile, merge_source_rules, prefilter_indices_sharded, render_report,
    render_rule_merge, Engine, ExtractRequest, Extraction, ExtractionConfig, MultiSourceExtractor,
    MultiStreamEvent, MultiStreamSummary, PrefilterMode, ReconfigRequest, ShardedExtractor,
    StreamEvent, StreamingExtractor, TransactionMode,
};
use anomex_detector::{DetectorConfig, MetaData};
use anomex_mining::{mine_top_k, MinerKind, RuleConfig, RARE_SUPPORT_GUARD};
use anomex_netflow::snapshot::{read_checkpoint, write_checkpoint, SnapshotReader, SnapshotWriter};
use anomex_netflow::v5::V5Exporter;
use anomex_netflow::v9::{decode_mixed_stream, TraceItem};
use anomex_netflow::{
    default_shards, FeatureValue, FlowRecord, FlowTrace, SourceId, SourceSpec, MINUTE_MS,
};
use anomex_traffic::{table2_workload, MultiSourceScenario, Scenario};

use crate::args::Args;

/// CLI usage text.
pub const USAGE: &str = "\
anomex — anomaly extraction in backbone networks (Brauckhoff et al., IMC'09/ToN'12)

USAGE:
  anomex generate --out FILE [--seed N] [--scale X] [--scenario small|two-weeks]
                  [--intervals N] [--sources N]
      Synthesize a workload and write it as concatenated NetFlow v5 datagrams.
      With --sources N > 1, synthesize an N-link multi-exporter workload
      (anomalies on link 0, tapering rates and clock skews on the rest)
      and write one trace file per link: pass --out once per source.

  anomex extract --in FILE [--in FILE ...] [--interval-min N] [--training N]
                 [--support N] [--miner apriori|fpgrowth|eclat] [--threads N]
                 [--prefixes] [--intersection]
                 [--rules] [--min-confidence C] [--min-lift L] [--rare]
                 [--force-rare]
      Run the full detection + extraction pipeline over a trace file and
      print a Table II-style report per alarmed interval. --threads N
      runs one worker pool of N threads (0 = one per hardware thread)
      that drives every phase: interval shards, support counting, and
      the miners' recursive search (candidate generation, conditional
      trees) as fork/join tasks on the same pool; the output is
      bit-identical for every thread count. With several --in files,
      each trace is sliced on its own interval grid and the per-interval
      flows are concatenated in file order — the batch reference for
      multi-source streaming. --rules (or any rule option) layers
      association rules X => Y on the mined item-sets, filtered by
      confidence >= C (default 0.6) and lift >= L (default 1.0) and
      ranked by a z-score meta-detection pass over the interval's rule
      population; --rare lowers the support floor per itemset level to
      keep low-support attacks minable. --rare with --support below 128
      is rejected (the lowered floor can explode the mining pass on
      large intervals); pass --force-rare to run it anyway. With
      several --in files the rules are additionally re-mined per source
      at weighted support floors and merged.

  anomex stream --in FILE|- [--in FILE ...] [--interval-min N] [--training N]
                [--support N] [--miner apriori|fpgrowth|eclat] [--threads N]
                [--max-lag N] [--prefixes] [--intersection] [--verbose]
                [--rules] [--min-confidence C] [--min-lift L] [--rare]
                [--force-rare] [--checkpoint-dir DIR] [--checkpoint-every N]
                [--resume] [--stop-after N]
      Replay a trace (or NetFlow v5 datagrams on stdin with --in -)
      through the continuous streaming engine: flows are assembled into
      Δ-minute intervals while the previous interval runs detection and
      extraction on a persistent worker pool. Prints a report per
      alarmed interval as it closes, then per-interval latency
      percentiles and drop counters. Output is bit-identical to
      `anomex extract` over the same trace (rule options included).
      With several --in files, the traces are fanned in as one exporter
      each onto a shared interval grid (watermark merge; --max-lag N
      bounds how many intervals the fastest source may run ahead, 0 =
      unbounded) — bit-identical to `anomex extract` with the same
      --in list, per-source rule merge sections included.
      Durable operation (single --in): --checkpoint-dir DIR atomically
      snapshots the full online state (detector baselines, assembler
      watermarks, drop and audit counters) to DIR/stream.ckpt every N
      closed intervals (--checkpoint-every, default 1); --resume
      restores from it — configuration included — skips the already
      consumed flows, and continues the event stream bit-identically;
      --stop-after N exits cleanly after N intervals with a final
      checkpoint (the kill-and-resume e2e cut point). A `reconfig` file
      in DIR (`min-support=N`, `alpha=X`, `shards=N`, `rules=on|off`,
      one per line) is consumed at the next interval boundary and
      applied atomically without dropping flows; the verdict lands in
      the StreamSummary audit counters.

  anomex analyze --in FILE --metadata \"dstPort=7000,#packets=12\" [--support N]
                 [--top] [--k N] [--threads N] [--prefixes] [--intersection]
      Offline extraction with explicit meta-data (the §II-B workflow).
      With --top, mine the k most frequent item-sets instead of using a
      fixed support.

  anomex table2 [--scale X]
      Reproduce the paper's Table II example.

  anomex help";

/// `anomex generate`.
pub fn generate(args: &Args) -> Result<(), String> {
    let sources = args.get_or("sources", 1usize).map_err(|e| e.to_string())?;
    if sources > 1 {
        return generate_multi(args, sources);
    }
    let out = args.require("out")?;
    let seed = args.get_or("seed", 42u64).map_err(|e| e.to_string())?;
    let scale = args.get_or("scale", 0.25f64).map_err(|e| e.to_string())?;
    let scenario = match args.get("scenario").unwrap_or("small") {
        "small" => Scenario::small(seed),
        "two-weeks" => Scenario::two_weeks(seed, scale),
        other => return Err(format!("unknown scenario {other:?} (small|two-weeks)")),
    };
    let intervals = args
        .get_or("intervals", scenario.interval_count())
        .map_err(|e| e.to_string())?
        .min(scenario.interval_count());

    let mut exporter = V5Exporter::new();
    let mut bytes: Vec<u8> = Vec::new();
    let mut flow_count = 0u64;
    for i in 0..intervals {
        let interval = scenario.generate(i);
        flow_count += interval.flows.len() as u64;
        for dgram in exporter.export(&interval.flows) {
            bytes.extend_from_slice(&dgram);
        }
    }
    fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} intervals, {} flows, {} bytes of NetFlow v5 to {}",
        intervals,
        flow_count,
        bytes.len(),
        out
    );
    println!(
        "ground truth: {} events in intervals {:?}",
        scenario.events().len(),
        scenario
            .anomalous_intervals()
            .iter()
            .take(16)
            .collect::<Vec<_>>()
    );
    Ok(())
}

/// `anomex generate --sources N`: synthesize an N-link multi-exporter
/// workload and write one NetFlow v5 trace file per link.
fn generate_multi(args: &Args, sources: usize) -> Result<(), String> {
    let outs = args.get_all("out");
    if outs.len() != sources {
        return Err(format!(
            "--sources {sources} needs exactly {sources} --out files (got {})",
            outs.len()
        ));
    }
    if args.get("scenario").unwrap_or("small") != "small" {
        return Err("multi-source generation supports --scenario small only".into());
    }
    if args.get("scale").is_some() {
        return Err(
            "multi-source generation does not take --scale (links carry per-link rates)".into(),
        );
    }
    let seed = args.get_or("seed", 42u64).map_err(|e| e.to_string())?;
    let scenario = MultiSourceScenario::uniform(seed, sources);
    let intervals = args
        .get_or("intervals", scenario.interval_count())
        .map_err(|e| e.to_string())?
        .min(scenario.interval_count());

    for (s, out) in outs.iter().enumerate() {
        let link = scenario.links()[s];
        let mut exporter = V5Exporter::new();
        let mut bytes: Vec<u8> = Vec::new();
        let mut flow_count = 0u64;
        for i in 0..intervals {
            let interval = scenario.generate(s, i);
            flow_count += interval.flows.len() as u64;
            for dgram in exporter.export(&interval.flows) {
                bytes.extend_from_slice(&dgram);
            }
        }
        fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote source {s}: {} intervals, {} flows, {} bytes of NetFlow v5 to {} \
             (rate {:.2}, skew {} ms{})",
            intervals,
            flow_count,
            bytes.len(),
            out,
            link.rate,
            link.skew_ms,
            if link.carries_anomalies {
                ", carries anomalies"
            } else {
                ""
            }
        );
    }
    let carrier = &scenario.link_scenario(0);
    println!(
        "ground truth: {} events on anomaly-carrying links, intervals {:?}",
        carrier.events().len(),
        carrier
            .anomalous_intervals()
            .iter()
            .take(16)
            .collect::<Vec<_>>()
    );
    Ok(())
}

/// Load a capture file (or stdin when `path` is `-`): NetFlow v5 flow
/// datagrams optionally interleaved with v9/IPFIX template-only
/// punctuation packets. Returns the flows plus the punctuation export
/// clocks in milliseconds — the heartbeats that let an idle-but-live
/// exporter release the multi-source watermark grid.
///
/// Files are memory-mapped rather than read into a heap buffer, so the
/// decoder walks the kernel page cache directly and multi-GB traces
/// never need a second in-memory copy of the raw bytes; when mapping is
/// unavailable (non-unix platforms, special files) the mapping layer
/// falls back to an ordinary heap read transparently.
fn load_trace_data(path: &str) -> Result<(Vec<FlowRecord>, Vec<u64>), String> {
    let stdin_buf;
    let mapping;
    let bytes: &[u8] = if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        stdin_buf = buf;
        &stdin_buf
    } else {
        mapping = memmap2::Mmap::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        &mapping
    };
    let items = decode_mixed_stream(bytes).map_err(|e| format!("{path}: {e}"))?;
    let mut flows = Vec::new();
    let mut heartbeats = Vec::new();
    for item in items {
        match item {
            TraceItem::Flows(dgram) => flows.extend(dgram.flows),
            TraceItem::Heartbeat(p) => heartbeats.push(p.export_ms),
        }
    }
    Ok((flows, heartbeats))
}

/// Load all flows from a trace file, ignoring any v9/IPFIX punctuation
/// (batch modes have no watermark to release).
fn load_flows(path: &str) -> Result<Vec<FlowRecord>, String> {
    load_trace_data(path).map(|(flows, _)| flows)
}

fn parse_miner(args: &Args) -> Result<MinerKind, String> {
    match args.get("miner").unwrap_or("apriori") {
        "apriori" => Ok(MinerKind::Apriori),
        "fpgrowth" | "fp-growth" => Ok(MinerKind::FpGrowth),
        "eclat" => Ok(MinerKind::Eclat),
        other => Err(format!("unknown miner {other:?} (apriori|fpgrowth|eclat)")),
    }
}

/// Parse `--threads N`: the shard/worker count, where `0` means one per
/// available hardware thread. Defaults to 1 (sequential).
fn parse_threads(args: &Args) -> Result<NonZeroUsize, String> {
    let n = args.get_or("threads", 1usize).map_err(|e| e.to_string())?;
    Ok(NonZeroUsize::new(n).unwrap_or_else(default_shards))
}

fn parse_modes(args: &Args) -> (PrefilterMode, TransactionMode) {
    let prefilter = if args.flag("intersection") {
        PrefilterMode::Intersection
    } else {
        PrefilterMode::Union
    };
    let tx = if args.flag("prefixes") {
        TransactionMode::WithPrefixes
    } else {
        TransactionMode::Canonical
    };
    (prefilter, tx)
}

/// Parse the association-rule options: `--rules` switches the layer on
/// with defaults, and giving any of `--min-confidence`, `--min-lift` or
/// `--rare` implies it.
fn parse_rules(args: &Args) -> Result<Option<RuleConfig>, String> {
    let enabled = args.flag("rules")
        || args.flag("rare")
        || args.get("min-confidence").is_some()
        || args.get("min-lift").is_some();
    if !enabled {
        return Ok(None);
    }
    let defaults = RuleConfig::default();
    Ok(Some(RuleConfig {
        min_confidence: args
            .get_or("min-confidence", defaults.min_confidence)
            .map_err(|e| e.to_string())?,
        min_lift: args
            .get_or("min-lift", defaults.min_lift)
            .map_err(|e| e.to_string())?,
        rare: args.flag("rare"),
    }))
}

/// Parse the shared pipeline options (`--interval-min`, `--training`,
/// `--support`, `--miner`, `--prefixes`, `--intersection`) into a
/// configuration — one definition for `extract` and `stream`, so the
/// batch and streaming paths can never drift apart.
fn parse_config(args: &Args) -> Result<ExtractionConfig, String> {
    let interval_min = args
        .get_or("interval-min", 15u64)
        .map_err(|e| e.to_string())?;
    let training = args
        .get_or("training", 48usize)
        .map_err(|e| e.to_string())?;
    let support = args.get_or("support", 50u64).map_err(|e| e.to_string())?;
    let miner = parse_miner(args)?;
    let (prefilter, transactions) = parse_modes(args);
    let rules = parse_rules(args)?;
    if let Some(rc) = &rules {
        if rc.rare_floor_explosive(support) && !args.flag("force-rare") {
            return Err(format!(
                "--rare with --support {support} drives the per-level support floor \
                 toward 1, which can explode the mining pass on large intervals \
                 (tens of GB of candidate item-sets); raise --support to at least \
                 {RARE_SUPPORT_GUARD} or pass --force-rare to override"
            ));
        }
    }
    let config = ExtractionConfig {
        interval_ms: interval_min * MINUTE_MS,
        detector: DetectorConfig {
            training_intervals: training,
            ..DetectorConfig::default()
        },
        min_support: support,
        miner,
        prefilter,
        transactions,
        rules,
    };
    // Validate here, before any path touches a trace (the multi-input
    // modes infer per-file origins with `% interval_ms` up front).
    config.validate().map_err(String::from)?;
    Ok(config)
}

/// Align a trace's interval grid to the window containing its first
/// flow — the per-file origin rule shared by the multi-input batch and
/// streaming paths (and the single-input ones), so every mode agrees on
/// the grid.
fn inferred_origin(trace: &mut FlowTrace, interval_ms: u64, path: &str) -> Result<u64, String> {
    let first = trace
        .start_ms()
        .ok_or_else(|| format!("{path}: trace is empty"))?;
    Ok(first - first % interval_ms)
}

/// Load every `--in` trace in file order.
fn load_traces(inputs: &[String]) -> Result<Vec<FlowTrace>, String> {
    inputs
        .iter()
        .map(|p| Ok(FlowTrace::from_flows(load_flows(p)?)))
        .collect()
}

/// Render one alarmed merged interval: the Table II-style report plus —
/// when the rule layer is on and at least two sources fed the interval —
/// the per-source rule merge section (each source's segment re-mined at
/// its weighted support floor, merged and re-scored). The one definition
/// both the batch multi-extract and the streaming fan-in print, so the
/// e2e byte-diff can hold.
fn render_multi_report(
    extraction: &Extraction,
    flows: &[FlowRecord],
    source_flows: &[usize],
    config: &ExtractionConfig,
) -> String {
    let mut out = render_report(extraction);
    if source_flows.len() >= 2 {
        if let Some(merged) = merge_source_rules(flows, source_flows, &extraction.metadata, config)
        {
            out.push_str(&render_rule_merge(&merged, source_flows.len()));
        }
    }
    out
}

/// Batch multi-source extraction: slice each trace on its own inferred
/// grid and run the per-interval concatenation (file order) through one
/// pipeline. Returns the rendered report per alarmed interval plus the
/// merged interval count — the batch reference the streaming fan-in is
/// bit-identical to.
fn run_extract_multi(
    traces: &mut [FlowTrace],
    paths: &[String],
    config: &ExtractionConfig,
    threads: NonZeroUsize,
) -> Result<(Vec<String>, usize), String> {
    let mut pipeline = ShardedExtractor::try_new(config.clone(), threads).map_err(String::from)?;
    let interval_ms = config.interval_ms;
    let mut origins = Vec::with_capacity(traces.len());
    for (trace, path) in traces.iter_mut().zip(paths) {
        origins.push(inferred_origin(trace, interval_ms, path)?);
    }
    let lanes: Vec<_> = traces
        .iter_mut()
        .zip(&origins)
        .map(|(trace, &origin)| trace.intervals(origin, interval_ms))
        .collect();
    let total = lanes.iter().map(Vec::len).max().unwrap_or(0);
    let mut reports = Vec::new();
    let mut merged: Vec<FlowRecord> = Vec::new();
    for i in 0..total {
        merged.clear();
        for lane in &lanes {
            if let Some(iv) = lane.get(i) {
                merged.extend_from_slice(iv.flows);
            }
        }
        if let Some(extraction) = pipeline.process_interval(&merged).extraction {
            let source_flows: Vec<usize> = lanes
                .iter()
                .map(|lane| lane.get(i).map_or(0, |iv| iv.flows.len()))
                .collect();
            reports.push(render_multi_report(
                &extraction,
                &merged,
                &source_flows,
                config,
            ));
        }
    }
    Ok((reports, total))
}

/// `anomex extract`.
pub fn extract(args: &Args) -> Result<(), String> {
    let inputs = args.get_all("in").to_vec();
    let config = parse_config(args)?;
    let threads = parse_threads(args)?;
    let support = config.min_support;
    let interval_min = config.interval_ms / MINUTE_MS;
    let miner = config.miner;

    if inputs.len() > 1 {
        let mut traces = load_traces(&inputs)?;
        let (reports, total) = run_extract_multi(&mut traces, &inputs, &config, threads)?;
        let alarms = reports.len();
        for report in reports {
            println!("{report}");
        }
        println!(
            "processed {total} merged intervals from {} sources, {alarms} alarmed \
             (s = {support}, Δ = {interval_min} min, miner = {miner}, threads = {threads})",
            inputs.len()
        );
        return Ok(());
    }

    let input = args.require("in")?;
    // Validate before touching the trace: a bad configuration should
    // fail instantly, not after decoding a multi-hundred-MB file.
    let mut pipeline = ShardedExtractor::try_new(config.clone(), threads).map_err(String::from)?;

    let mut trace = FlowTrace::from_flows(load_flows(input)?);
    // Align windows to the interval grid containing the first flow.
    let origin = inferred_origin(&mut trace, config.interval_ms, input)?;
    let mut alarms = 0u32;
    let intervals = trace.intervals(origin, config.interval_ms);
    let total = intervals.len();
    for iv in &intervals {
        let outcome = pipeline.process_interval(iv.flows);
        if let Some(extraction) = outcome.extraction {
            alarms += 1;
            println!("{}", render_report(&extraction));
        }
    }
    println!("processed {total} intervals, {alarms} alarmed (s = {support}, Δ = {interval_min} min, miner = {miner}, threads = {threads})");
    Ok(())
}

/// Render one streaming event: a verbose per-interval line and, on
/// alarm, the full Table II-style report.
fn print_stream_event(event: &StreamEvent, verbose: bool) {
    print_stream_line(event, verbose);
    if let Some(extraction) = &event.outcome.extraction {
        println!("{}", render_report(extraction));
    }
}

/// The `--verbose` per-interval status line, shared by the single- and
/// multi-source streaming printers.
fn print_stream_line(event: &StreamEvent, verbose: bool) {
    if verbose {
        println!(
            "interval {:>4}  [{} ms, {} ms)  {:>8} flows  {:>8} µs  {}",
            event.index,
            event.begin_ms,
            event.end_ms,
            event.flows,
            event.process_micros,
            if event.alarmed() { "ALARM" } else { "ok" }
        );
    }
}

/// Streaming multi-source fan-in: each trace becomes one exporter on a
/// shared interval grid, replayed in collector arrival order (k-way
/// merge on grid-relative time, ties to the lowest source id; a
/// source's flows before its same-millisecond heartbeats). Returns
/// every merged event plus the end-of-stream summary — bit-identical to
/// [`run_extract_multi`] over the same traces, asserted by the CLI test
/// suite and the `e2e-stream` CI job. `heartbeats` carries each lane's
/// v9/IPFIX punctuation clocks (absolute source-local ms): an
/// idle-but-live exporter's heartbeats advance its watermark, releasing
/// merged intervals the grid would otherwise hold until `max_lag`.
fn run_stream_multi(
    traces: Vec<FlowTrace>,
    heartbeats: &[Vec<u64>],
    origins: &[u64],
    config: ExtractionConfig,
    threads: NonZeroUsize,
    max_lag: Option<u64>,
) -> Result<(Vec<MultiStreamEvent>, MultiStreamSummary), String> {
    let specs: Vec<SourceSpec> = origins
        .iter()
        .enumerate()
        .map(|(i, &origin)| SourceSpec::new(i as u32, origin))
        .collect();
    let mut engine =
        MultiSourceExtractor::try_new(config, threads, &specs, max_lag).map_err(String::from)?;
    let lanes: Vec<Vec<FlowRecord>> = traces.into_iter().map(FlowTrace::into_flows).collect();
    let mut cursors = vec![0usize; lanes.len()];
    let mut hb_cursors = vec![0usize; lanes.len()];
    let mut events = Vec::new();
    loop {
        // Pick the earliest pending item on grid-relative time. Flows
        // are scanned first and replaced only on strictly smaller keys,
        // so a flow beats a heartbeat at the same instant and lower
        // source ids win ties — the collector arrival order the batch
        // reference concatenates in.
        let mut next: Option<(u64, usize, bool)> = None;
        for (s, lane) in lanes.iter().enumerate() {
            if let Some(flow) = lane.get(cursors[s]) {
                let key = flow.start_ms.saturating_sub(origins[s]);
                if next.map_or(true, |(k, _, _)| key < k) {
                    next = Some((key, s, false));
                }
            }
        }
        for (s, lane) in heartbeats.iter().enumerate() {
            if let Some(&hb_ms) = lane.get(hb_cursors[s]) {
                let key = hb_ms.saturating_sub(origins[s]);
                if next.map_or(true, |(k, _, _)| key < k) {
                    next = Some((key, s, true));
                }
            }
        }
        let Some((_, s, is_heartbeat)) = next else {
            break;
        };
        if is_heartbeat {
            let hb_ms = heartbeats[s][hb_cursors[s]];
            hb_cursors[s] += 1;
            events.extend(engine.heartbeat(SourceId(s as u32), hb_ms));
        } else {
            let flow = lanes[s][cursors[s]];
            cursors[s] += 1;
            events.extend(engine.push(SourceId(s as u32), flow));
        }
    }
    let (tail, summary) = engine.finish();
    events.extend(tail);
    Ok((events, summary))
}

/// Durable-operation options for `anomex stream`: periodic checkpoints
/// into `--checkpoint-dir`, `--resume` from the latest one, and the
/// deterministic `--stop-after` cut used by the kill-and-resume e2e.
struct Durability {
    dir: PathBuf,
    every: u64,
    resume: bool,
    stop_after: Option<u64>,
}

impl Durability {
    /// `<dir>/stream.ckpt` — the single rotating checkpoint file.
    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("stream.ckpt")
    }
}

/// Parse `--checkpoint-dir DIR [--checkpoint-every N] [--resume]
/// [--stop-after N]`. The dependent options are rejected without the
/// directory rather than silently ignored.
fn parse_durability(args: &Args) -> Result<Option<Durability>, String> {
    let Some(dir) = args.get("checkpoint-dir") else {
        for opt in ["checkpoint-every", "stop-after"] {
            if args.get(opt).is_some() {
                return Err(format!("--{opt} needs --checkpoint-dir"));
            }
        }
        if args.flag("resume") {
            return Err("--resume needs --checkpoint-dir".into());
        }
        return Ok(None);
    };
    let every = args
        .get_or("checkpoint-every", 1u64)
        .map_err(|e| e.to_string())?;
    if every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    let stop_after = match args.get("stop-after") {
        None => None,
        Some(_) => Some(args.get_or("stop-after", 0u64).map_err(|e| e.to_string())?),
    };
    fs::create_dir_all(dir).map_err(|e| format!("cannot create --checkpoint-dir {dir}: {e}"))?;
    Ok(Some(Durability {
        dir: PathBuf::from(dir),
        every,
        resume: args.flag("resume"),
        stop_after,
    }))
}

/// Parse the reconfig control file: one `key = value` per line, `#`
/// comments. Keys: `min-support`, `alpha`, `shards`, `rules=on|off`.
fn parse_reconfig(text: &str) -> Result<ReconfigRequest, String> {
    let mut req = ReconfigRequest::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "min-support" => {
                req.min_support = Some(
                    value
                        .parse()
                        .map_err(|_| format!("min-support: expected an integer, got {value:?}"))?,
                );
            }
            "alpha" => {
                req.alpha = Some(
                    value
                        .parse()
                        .map_err(|_| format!("alpha: expected a number, got {value:?}"))?,
                );
            }
            "shards" | "threads" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("shards: expected an integer, got {value:?}"))?;
                req.shards =
                    Some(NonZeroUsize::new(n).ok_or_else(|| "shards must be >= 1".to_string())?);
            }
            "rules" => {
                req.rules = Some(match value {
                    "on" => Some(RuleConfig::default()),
                    "off" => None,
                    other => return Err(format!("rules: expected on|off, got {other:?}")),
                });
            }
            other => return Err(format!("unknown reconfig key {other:?}")),
        }
    }
    Ok(req)
}

/// Consume `<dir>/reconfig` when present: parse it, apply the request
/// at the current interval boundary, delete the file, and report the
/// verdict on stderr (stdout stays byte-comparable across runs).
/// Returns the interval events that drained around the boundary.
fn consume_reconfig_file(dir: &Path, engine: &mut StreamingExtractor) -> Vec<StreamEvent> {
    let path = dir.join("reconfig");
    let Ok(text) = fs::read_to_string(&path) else {
        return Vec::new();
    };
    fs::remove_file(&path).ok();
    match parse_reconfig(&text) {
        Ok(req) if !req.is_empty() => {
            let describe = format!("{req:?}");
            let (events, verdict) = engine.reconfigure(req);
            match verdict {
                Ok(()) => eprintln!("reconfig applied: {describe}"),
                Err(e) => eprintln!("reconfig rejected: {e}"),
            }
            events
        }
        Ok(_) => {
            eprintln!("reconfig file {} was empty; ignored", path.display());
            Vec::new()
        }
        Err(e) => {
            eprintln!("reconfig file {} invalid: {e}; ignored", path.display());
            Vec::new()
        }
    }
}

/// Take a checkpoint: drain the pipeline, snapshot the full online
/// state, and atomically replace the checkpoint file with
/// `{flows consumed, engine payload}`. Returns the drained events.
fn take_checkpoint(
    engine: &mut StreamingExtractor,
    pushed: u64,
    path: &Path,
) -> Result<Vec<StreamEvent>, String> {
    let (events, payload) = engine.checkpoint();
    let mut w = SnapshotWriter::new();
    w.u64(pushed);
    w.bytes(&payload);
    write_checkpoint(path, &w.into_bytes())
        .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
    Ok(events)
}

/// Restore a `stream` session from a checkpoint file: returns the
/// restored engine plus the number of input flows already consumed, so
/// the caller can skip them on replay.
fn restore_from_checkpoint(
    path: &Path,
    threads: Option<NonZeroUsize>,
) -> Result<(StreamingExtractor, u64), String> {
    let at = |e: anomex_netflow::snapshot::RestoreError| {
        format!("cannot resume from {}: {e}", path.display())
    };
    let payload = read_checkpoint(path).map_err(at)?;
    let mut r = SnapshotReader::new(&payload);
    let pushed = r.u64().map_err(at)?;
    let engine_bytes = r.bytes().map_err(at)?;
    r.finish().map_err(at)?;
    let engine = StreamingExtractor::restore(engine_bytes, threads).map_err(at)?;
    Ok((engine, pushed))
}

/// `anomex stream`.
pub fn stream(args: &Args) -> Result<(), String> {
    let inputs = args.get_all("in").to_vec();
    let config = parse_config(args)?;
    let threads = parse_threads(args)?;
    let verbose = args.flag("verbose");
    let durability = parse_durability(args)?;
    if durability.is_some() && inputs.len() > 1 {
        return Err("--checkpoint-dir currently supports a single --in trace".into());
    }
    let support = config.min_support;
    let interval_min = config.interval_ms / MINUTE_MS;
    let miner = config.miner;

    if inputs.len() > 1 {
        let max_lag_raw = args.get_or("max-lag", 0u64).map_err(|e| e.to_string())?;
        let max_lag = (max_lag_raw > 0).then_some(max_lag_raw);
        let mut traces = Vec::with_capacity(inputs.len());
        let mut heartbeats = Vec::with_capacity(inputs.len());
        for path in &inputs {
            let (flows, hbs) = load_trace_data(path)?;
            traces.push(FlowTrace::from_flows(flows));
            heartbeats.push(hbs);
        }
        let mut origins = Vec::with_capacity(traces.len());
        for (trace, path) in traces.iter_mut().zip(&inputs) {
            origins.push(inferred_origin(trace, config.interval_ms, path)?);
        }
        let (events, summary) = run_stream_multi(
            traces,
            &heartbeats,
            &origins,
            config.clone(),
            threads,
            max_lag,
        )?;
        let mut latencies: Vec<u64> = Vec::new();
        for event in &events {
            latencies.push(event.event.process_micros);
            print_stream_line(&event.event, verbose);
            if let Some(extraction) = &event.event.outcome.extraction {
                println!(
                    "{}",
                    render_multi_report(extraction, &event.flow_data, &event.source_flows, &config)
                );
            }
        }
        let p50 = latency_percentile(&mut latencies, 50.0);
        let p95 = latency_percentile(&mut latencies, 95.0);
        println!(
            "fan-in: streamed {} flows from {} sources into {} merged intervals: \
             {} alarmed, {} extracted (s = {support}, Δ = {interval_min} min, \
             miner = {miner}, threads = {threads})",
            summary.total_flows,
            inputs.len(),
            summary.intervals,
            summary.alarms,
            summary.extractions
        );
        for (stats, path) in summary.sources.iter().zip(&inputs) {
            println!(
                "source {} ({path}): {} flows, {} late, {} pre-origin, {} stale",
                stats.id, stats.flows, stats.late_flows, stats.pre_origin_flows, stats.stale_flows
            );
        }
        println!(
            "per-interval latency: p50 = {p50} µs, p95 = {p95} µs; dropped flows: {} total",
            summary.dropped_flows
        );
        return Ok(());
    }

    let input = args.require("in")?;

    // Replay in trace order (sorted by start time) so the event stream
    // is bit-identical to what `anomex extract` prints for this trace.
    let mut trace = FlowTrace::from_flows(load_flows(input)?);
    let origin = inferred_origin(&mut trace, config.interval_ms, input)?;

    // Resume restores the full online state — configuration included —
    // from the checkpoint; otherwise start cold from the CLI options.
    // `--threads` explicitly given overrides the checkpointed shard
    // count (the output is shard-invariant, so this is always safe).
    let threads_override = args.get("threads").is_some().then_some(threads);
    let resume_from = durability
        .as_ref()
        .filter(|d| d.resume)
        .map(Durability::checkpoint_path)
        .filter(|p| p.exists());
    let (mut engine, mut pushed) = match &resume_from {
        Some(path) => {
            let (engine, pushed) = restore_from_checkpoint(path, threads_override)?;
            eprintln!(
                "resumed from {} ({pushed} flows already consumed)",
                path.display()
            );
            (engine, pushed)
        }
        None => (
            StreamingExtractor::try_new(config, threads, origin).map_err(String::from)?,
            0,
        ),
    };

    let mut latencies: Vec<u64> = Vec::new();
    let drain = |events: Vec<StreamEvent>, latencies: &mut Vec<u64>| -> u64 {
        let closed = events.len() as u64;
        for event in events {
            latencies.push(event.process_micros);
            print_stream_event(&event, verbose);
        }
        closed
    };
    let mut closed_this_run = 0u64;
    let mut since_checkpoint = 0u64;
    let mut stopped = false;
    for flow in trace.into_flows().into_iter().skip(pushed as usize) {
        pushed += 1;
        let boundary = {
            let events = engine.push(flow);
            let closed = drain(events, &mut latencies);
            closed_this_run += closed;
            since_checkpoint += closed;
            closed > 0
        };
        let Some(d) = &durability else { continue };
        if boundary && d.stop_after.is_some_and(|n| closed_this_run >= n) {
            let tail = take_checkpoint(&mut engine, pushed, &d.checkpoint_path())?;
            drain(tail, &mut latencies);
            stopped = true;
            break;
        }
        if boundary && since_checkpoint >= d.every {
            since_checkpoint = 0;
            // Reconfig requests are consumed at interval boundaries and
            // land in the checkpoint that follows, so a resume replays
            // the stream under the reconfigured engine.
            let events = consume_reconfig_file(&d.dir, &mut engine);
            closed_this_run += drain(events, &mut latencies);
            let tail = take_checkpoint(&mut engine, pushed, &d.checkpoint_path())?;
            closed_this_run += drain(tail, &mut latencies);
        }
    }
    if stopped {
        let d = durability.as_ref().expect("stop implies durability");
        eprintln!(
            "stopped after {closed_this_run} interval(s); checkpoint at {}",
            d.checkpoint_path().display()
        );
        return Ok(());
    }
    let (tail, summary) = engine.finish();
    drain(tail, &mut latencies);

    let p50 = latency_percentile(&mut latencies, 50.0);
    let p95 = latency_percentile(&mut latencies, 95.0);
    println!(
        "streamed {} flows into {} intervals: {} alarmed, {} extracted \
         (s = {support}, Δ = {interval_min} min, miner = {miner}, threads = {threads})",
        summary.total_flows, summary.intervals, summary.alarms, summary.extractions
    );
    println!(
        "per-interval latency: p50 = {p50} µs, p95 = {p95} µs; dropped flows: {} late, {} pre-origin",
        summary.late_flows, summary.pre_origin_flows
    );
    if summary.reconfigs_applied + summary.reconfigs_rejected > 0 {
        println!(
            "reconfigurations: {} applied, {} rejected",
            summary.reconfigs_applied, summary.reconfigs_rejected
        );
    }
    Ok(())
}

/// Parse a comma-separated `feature=value` list into meta-data.
pub fn parse_metadata(spec: &str) -> Result<MetaData, String> {
    let mut md = MetaData::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let fv: FeatureValue = part.parse().map_err(|e| format!("{part:?}: {e}"))?;
        md.insert(fv.feature, fv.raw);
    }
    if md.is_empty() {
        return Err("meta-data is empty".into());
    }
    Ok(md)
}

/// `anomex analyze`.
pub fn analyze(args: &Args) -> Result<(), String> {
    let input = args.require("in")?;
    let metadata = parse_metadata(args.require("metadata")?)?;
    let support = args.get_or("support", 50u64).map_err(|e| e.to_string())?;
    let miner = parse_miner(args)?;
    let threads = parse_threads(args)?;
    let (prefilter, tx_mode) = parse_modes(args);
    let flows = load_flows(input)?;

    if args.flag("top") {
        let k = args.get_or("k", 10usize).map_err(|e| e.to_string())?;
        let indices = prefilter_indices_sharded(&flows, &metadata, prefilter, threads);
        let transactions = tx_mode.transactions_at(&flows, &indices);
        let start = (indices.len() as u64 / 10).max(1);
        let top = mine_top_k(&transactions, miner, k, start);
        println!(
            "top {} item-sets of {} suspicious flows (effective support {}, {} rounds):",
            top.itemsets.len(),
            indices.len(),
            top.effective_support,
            top.rounds
        );
        for (i, set) in top.itemsets.iter().enumerate() {
            println!("{:>3}. {set}", i + 1);
        }
        return Ok(());
    }

    let extraction = Engine::extract(
        &ExtractRequest::new(&flows, &metadata, support)
            .prefilter(prefilter)
            .transactions(tx_mode)
            .miner(miner)
            .shards(threads),
    );
    println!("{}", render_report(&extraction));
    Ok(())
}

/// `anomex table2`.
pub fn table2(args: &Args) -> Result<(), String> {
    let scale = args.get_or("scale", 1.0f64).map_err(|e| e.to_string())?;
    let w = table2_workload(2009, scale);
    let mut metadata = MetaData::new();
    for port in [u64::from(w.flood_port), 80, 9022, 25] {
        metadata.insert(anomex_netflow::FlowFeature::DstPort, port);
    }
    let extraction = Engine::extract(&ExtractRequest::new(&w.flows, &metadata, w.min_support));
    println!("{}", render_report(&extraction));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomex_netflow::FlowFeature;

    #[test]
    fn metadata_parsing_accepts_mixed_features() {
        let md = parse_metadata("dstPort=7000, srcIP=10.0.0.1 ,#packets=12").unwrap();
        assert_eq!(md.len(), 3);
        assert!(md.values_for(FlowFeature::DstPort).unwrap().contains(&7000));
        assert!(md.values_for(FlowFeature::Packets).unwrap().contains(&12));
    }

    #[test]
    fn metadata_parsing_rejects_garbage() {
        assert!(parse_metadata("dstPort=").is_err());
        assert!(parse_metadata("").is_err());
        assert!(parse_metadata("nope=1").is_err());
    }

    #[test]
    fn miner_parsing() {
        let a = Args::parse(["x", "--miner", "eclat"].iter().map(ToString::to_string)).unwrap();
        assert_eq!(parse_miner(&a).unwrap(), MinerKind::Eclat);
        let a = Args::parse(["x"].iter().map(ToString::to_string)).unwrap();
        assert_eq!(parse_miner(&a).unwrap(), MinerKind::Apriori);
        let a = Args::parse(["x", "--miner", "zzz"].iter().map(ToString::to_string)).unwrap();
        assert!(parse_miner(&a).is_err());
    }

    #[test]
    fn threads_parsing() {
        let a = Args::parse(["x", "--threads", "4"].iter().map(ToString::to_string)).unwrap();
        assert_eq!(parse_threads(&a).unwrap().get(), 4);
        let a = Args::parse(["x"].iter().map(ToString::to_string)).unwrap();
        assert_eq!(parse_threads(&a).unwrap().get(), 1, "sequential by default");
        let a = Args::parse(["x", "--threads", "0"].iter().map(ToString::to_string)).unwrap();
        assert!(parse_threads(&a).unwrap().get() >= 1, "0 means auto");
        let a = Args::parse(["x", "--threads", "no"].iter().map(ToString::to_string)).unwrap();
        assert!(parse_threads(&a).is_err());
    }

    #[test]
    fn rule_options_parse_and_imply_the_layer() {
        let a = Args::parse(["x"].iter().map(ToString::to_string)).unwrap();
        assert_eq!(parse_rules(&a).unwrap(), None, "off by default");
        let a = Args::parse(["x", "--rules"].iter().map(ToString::to_string)).unwrap();
        assert_eq!(parse_rules(&a).unwrap(), Some(RuleConfig::default()));
        let a = Args::parse(
            ["x", "--min-confidence", "0.9", "--rare"]
                .iter()
                .map(ToString::to_string),
        )
        .unwrap();
        let rc = parse_rules(&a).unwrap().expect("options imply --rules");
        assert_eq!(rc.min_confidence, 0.9);
        assert!(rc.rare);
        let a = Args::parse(
            ["x", "--rules", "--min-lift", "zzz"]
                .iter()
                .map(ToString::to_string),
        )
        .unwrap();
        assert!(parse_rules(&a).is_err(), "bad value reported");
    }

    #[test]
    fn rare_below_the_guard_needs_force_rare() {
        let parse = |argv: &[&str]| {
            parse_config(&Args::parse(argv.iter().map(ToString::to_string)).unwrap())
        };
        let err = parse(&["x", "--rare", "--support", "50"]).unwrap_err();
        assert!(
            err.contains("--force-rare"),
            "error names the escape hatch: {err}"
        );
        assert!(err.contains("128"), "error names the floor: {err}");
        parse(&["x", "--rare", "--support", "50", "--force-rare"])
            .expect("--force-rare overrides the guard");
        parse(&["x", "--rare", "--support", "128"])
            .expect("at the guard threshold no override is needed");
        parse(&["x", "--rules", "--support", "50"])
            .expect("non-rare rules are unaffected by the guard");
    }

    #[test]
    fn reconfig_file_parsing() {
        let req = parse_reconfig(
            "# boundary reconfig\nmin-support = 400\nalpha=4.5\nshards = 2\nrules = on\n",
        )
        .unwrap();
        assert_eq!(req.min_support, Some(400));
        assert_eq!(req.alpha, Some(4.5));
        assert_eq!(req.shards.map(NonZeroUsize::get), Some(2));
        assert_eq!(req.rules, Some(Some(RuleConfig::default())));
        let req = parse_reconfig("rules=off").unwrap();
        assert_eq!(req.rules, Some(None));
        assert!(parse_reconfig("").unwrap().is_empty());
        assert!(parse_reconfig("min-support").is_err(), "no value");
        assert!(parse_reconfig("min-support=lots").is_err());
        assert!(parse_reconfig("shards=0").is_err());
        assert!(parse_reconfig("rules=maybe").is_err());
        assert!(parse_reconfig("frobnicate=1").is_err());
    }

    #[test]
    fn durability_options_require_the_dir() {
        let parse = |argv: &[&str]| {
            parse_durability(&Args::parse(argv.iter().map(ToString::to_string)).unwrap())
        };
        assert_eq!(parse(&["stream"]).unwrap().map(|_| ()), None);
        assert!(parse(&["stream", "--resume"]).is_err());
        assert!(parse(&["stream", "--checkpoint-every", "5"]).is_err());
        assert!(parse(&["stream", "--stop-after", "3"]).is_err());
        let dir = std::env::temp_dir().join("anomex-cli-durability-test");
        let dir_s = dir.to_str().unwrap();
        let d = parse(&[
            "stream",
            "--checkpoint-dir",
            dir_s,
            "--checkpoint-every",
            "5",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(d.every, 5);
        assert!(!d.resume);
        assert_eq!(d.stop_after, None);
        assert_eq!(d.checkpoint_path(), dir.join("stream.ckpt"));
        assert!(
            parse(&[
                "stream",
                "--checkpoint-dir",
                dir_s,
                "--checkpoint-every",
                "0"
            ])
            .is_err(),
            "zero interval cadence is rejected"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The checkpoint file round-trips through the CLI framing (consumed
    /// flow count + engine payload) and the restored engine continues
    /// the stream; a truncated file fails with a diagnostic, not a panic.
    #[test]
    fn checkpoint_file_round_trips_and_rejects_corruption() {
        use anomex_netflow::Protocol;
        let dir = std::env::temp_dir().join("anomex-cli-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.ckpt");

        let config = ExtractionConfig {
            interval_ms: 1_000,
            min_support: 10,
            ..ExtractionConfig::default()
        };
        let mut engine = StreamingExtractor::try_new(config, NonZeroUsize::MIN, 0).unwrap();
        let flow = |ms| {
            FlowRecord::new(
                ms,
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                1,
                2,
                Protocol::Udp,
            )
        };
        let _ = engine.push(flow(100));
        let _ = engine.push(flow(1_200));
        let _ = take_checkpoint(&mut engine, 2, &path).unwrap();

        let (mut resumed, pushed) = restore_from_checkpoint(&path, None).unwrap();
        assert_eq!(pushed, 2);
        let _ = resumed.push(flow(2_500));
        let (_, summary) = resumed.finish();
        assert_eq!(summary.total_flows, 3, "resumed run continues the count");

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = restore_from_checkpoint(&path, None).unwrap_err();
        assert!(
            err.contains("cannot resume"),
            "diagnostic names the file: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mode_flags() {
        let a = Args::parse(
            ["x", "--prefixes", "--intersection"]
                .iter()
                .map(ToString::to_string),
        )
        .unwrap();
        let (p, t) = parse_modes(&a);
        assert_eq!(p, PrefilterMode::Intersection);
        assert_eq!(t, TransactionMode::WithPrefixes);
    }

    /// The streaming replay must reproduce exactly the per-interval
    /// outcomes the batch `extract` path computes over the same trace.
    #[test]
    fn stream_replay_matches_batch_extract() {
        use anomex_traffic::Scenario;
        let scenario = Scenario::small(23);
        let config = ExtractionConfig {
            interval_ms: scenario.interval_ms(),
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 800,
            // Rules on: the rendered reports then carry the ranked-rule
            // section, so this also pins rule determinism batch vs stream.
            rules: Some(RuleConfig::default()),
            ..ExtractionConfig::default()
        };
        // Round-trip the flows through the wire format, as `stream` does.
        let mut exporter = V5Exporter::new();
        let mut bytes = Vec::new();
        for i in 0..scenario.interval_count().min(23) {
            for dgram in exporter.export(&scenario.generate(i).flows) {
                bytes.extend_from_slice(&dgram);
            }
        }
        let decoded: Vec<FlowRecord> = anomex_netflow::v5::decode_stream(&bytes)
            .unwrap()
            .into_iter()
            .flat_map(|d| d.flows)
            .collect();

        let mut trace = FlowTrace::from_flows(decoded);
        let origin = trace.start_ms().unwrap();
        let origin = origin - origin % config.interval_ms;

        let mut batch = ShardedExtractor::try_new(config.clone(), NonZeroUsize::MIN).unwrap();
        let mut batch_reports = Vec::new();
        for iv in &trace.intervals(origin, config.interval_ms) {
            if let Some(ex) = batch.process_interval(iv.flows).extraction {
                batch_reports.push(render_report(&ex));
            }
        }

        let threads = NonZeroUsize::new(2).unwrap();
        let mut engine = StreamingExtractor::try_new(config, threads, origin).unwrap();
        let mut stream_reports = Vec::new();
        let mut events = Vec::new();
        for flow in trace.into_flows() {
            events.extend(engine.push(flow));
        }
        let (tail, summary) = engine.finish();
        events.extend(tail);
        for event in &events {
            if let Some(ex) = &event.outcome.extraction {
                stream_reports.push(render_report(ex));
            }
        }
        assert!(!batch_reports.is_empty(), "the scenario must alarm");
        assert_eq!(stream_reports, batch_reports, "replay diverged");
        assert_eq!(summary.extractions as usize, batch_reports.len());
        assert_eq!(summary.late_flows + summary.pre_origin_flows, 0);
    }

    /// The multi-source streaming fan-in must reproduce exactly the
    /// batch multi-input extraction over the same trace files — the
    /// in-process twin of CI's `e2e-stream` job, through real NetFlow v5
    /// files with skewed per-source clocks.
    #[test]
    fn stream_fan_in_matches_multi_input_extract() {
        use anomex_traffic::MultiSourceScenario;
        let dir = std::env::temp_dir().join("anomex-cli-multisource-test");
        std::fs::create_dir_all(&dir).unwrap();

        let scenario = MultiSourceScenario::uniform(13, 2);
        let intervals = scenario.interval_count().min(22);
        let mut paths = Vec::new();
        for s in 0..2 {
            let mut exporter = V5Exporter::new();
            let mut bytes = Vec::new();
            for i in 0..intervals {
                for dgram in exporter.export(&scenario.generate(s, i).flows) {
                    bytes.extend_from_slice(&dgram);
                }
            }
            let path = dir.join(format!("link{s}.nfv5"));
            std::fs::write(&path, &bytes).unwrap();
            paths.push(path.to_str().unwrap().to_string());
        }

        let config = ExtractionConfig {
            interval_ms: scenario.interval_ms(),
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 800,
            // Rules on: the reports then include both the ranked-rule
            // section and the per-source rule merge section, so the
            // fan-in equality below covers the whole rule layer.
            rules: Some(RuleConfig::default()),
            ..ExtractionConfig::default()
        };
        let threads = NonZeroUsize::new(2).unwrap();

        let mut traces = load_traces(&paths).unwrap();
        let (batch_reports, total) =
            run_extract_multi(&mut traces, &paths, &config, NonZeroUsize::MIN).unwrap();
        assert!(!batch_reports.is_empty(), "the flood must alarm");
        assert!(
            batch_reports
                .iter()
                .any(|r| r.contains("Per-source rule merge — 2 source(s)")),
            "multi-source reports carry the merge section"
        );
        // The skewed link spills past its inferred (floored) origin into
        // one extra trailing window, so the merged grid may exceed the
        // generator's interval count by one.
        assert!(total as u64 >= intervals, "{total} < {intervals}");

        let mut traces = load_traces(&paths).unwrap();
        let mut origins = Vec::new();
        for (trace, path) in traces.iter_mut().zip(&paths) {
            origins.push(inferred_origin(trace, config.interval_ms, path).unwrap());
        }
        let no_heartbeats = vec![Vec::new(); origins.len()];
        let (events, summary) = run_stream_multi(
            traces,
            &no_heartbeats,
            &origins,
            config.clone(),
            threads,
            None,
        )
        .unwrap();
        let stream_reports: Vec<String> = events
            .iter()
            .filter_map(|e| {
                e.event
                    .outcome
                    .extraction
                    .as_ref()
                    .map(|ex| render_multi_report(ex, &e.flow_data, &e.source_flows, &config))
            })
            .collect();
        assert_eq!(stream_reports, batch_reports, "fan-in diverged from batch");
        assert_eq!(summary.intervals as usize, total, "grids agree");
        assert_eq!(summary.dropped_flows, 0);
        assert_eq!(summary.sources.len(), 2);
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    }

    /// A trace file interleaving v5 datagrams with v9/IPFIX
    /// options-template punctuation loads into flows plus heartbeat
    /// clocks, and replaying the heartbeats through the fan-in leaves
    /// the outcome stream bit-identical (heartbeats advance watermarks;
    /// they never carry flows).
    #[test]
    fn punctuated_trace_heartbeats_flow_into_the_grid() {
        use anomex_netflow::v9::{encode_ipfix_options_template, encode_v9_options_template};
        use anomex_traffic::MultiSourceScenario;
        let dir = std::env::temp_dir().join("anomex-cli-punctuation-test");
        std::fs::create_dir_all(&dir).unwrap();

        let scenario = MultiSourceScenario::uniform(17, 2);
        let intervals = scenario.interval_count().min(16);
        let mut paths = Vec::new();
        for s in 0..2 {
            let mut exporter = V5Exporter::new();
            let mut bytes = Vec::new();
            for i in 0..intervals {
                let flows = scenario.generate(s, i).flows;
                let end_secs = flows.last().map_or(0, |f| (f.start_ms / 1000) as u32);
                for dgram in exporter.export(&flows) {
                    bytes.extend_from_slice(&dgram);
                }
                // An options-template keepalive after each interval's
                // flows, v9 on source 0 and IPFIX on source 1.
                let punct = if s == 0 {
                    encode_v9_options_template(end_secs, i as u32, s as u32)
                } else {
                    encode_ipfix_options_template(end_secs, i as u32, s as u32)
                };
                bytes.extend_from_slice(&punct);
            }
            let path = dir.join(format!("link{s}.nf"));
            std::fs::write(&path, &bytes).unwrap();
            paths.push(path.to_str().unwrap().to_string());
        }

        let mut traces = Vec::new();
        let mut heartbeats = Vec::new();
        for path in &paths {
            let (flows, hbs) = load_trace_data(path).unwrap();
            assert_eq!(hbs.len() as u64, intervals, "one keepalive per interval");
            traces.push(FlowTrace::from_flows(flows));
            heartbeats.push(hbs);
        }
        let config = ExtractionConfig {
            interval_ms: scenario.interval_ms(),
            detector: DetectorConfig {
                training_intervals: 8,
                ..DetectorConfig::default()
            },
            min_support: 800,
            ..ExtractionConfig::default()
        };
        let mut origins = Vec::new();
        for (trace, path) in traces.iter_mut().zip(&paths) {
            origins.push(inferred_origin(trace, config.interval_ms, path).unwrap());
        }
        let threads = NonZeroUsize::MIN;
        let silent = vec![Vec::new(); origins.len()];
        let (plain_events, plain_summary) = run_stream_multi(
            traces.clone(),
            &silent,
            &origins,
            config.clone(),
            threads,
            None,
        )
        .unwrap();
        let (events, summary) =
            run_stream_multi(traces, &heartbeats, &origins, config, threads, None).unwrap();
        assert_eq!(summary.total_flows, plain_summary.total_flows);
        assert_eq!(summary.intervals, plain_summary.intervals);
        assert_eq!(summary.dropped_flows, 0, "heartbeats drop nothing");
        let outcomes: Vec<String> = events
            .iter()
            .map(|e| format!("{:?}", e.event.outcome))
            .collect();
        let plain_outcomes: Vec<String> = plain_events
            .iter()
            .map(|e| format!("{:?}", e.event.outcome))
            .collect();
        assert_eq!(outcomes, plain_outcomes, "punctuation changed the output");
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    }

    /// End-to-end through temp files: generate a small trace, reload it,
    /// analyze with explicit meta-data.
    #[test]
    fn generate_then_analyze_round_trip() {
        let dir = std::env::temp_dir().join("anomex-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.nfv5");
        let path_s = path.to_str().unwrap().to_string();

        let args = Args::parse(
            [
                "generate",
                "--out",
                &path_s,
                "--seed",
                "7",
                "--intervals",
                "25",
            ]
            .iter()
            .map(ToString::to_string),
        )
        .unwrap();
        generate(&args).unwrap();

        let flows = load_flows(&path_s).unwrap();
        assert!(flows.len() > 50_000, "25 intervals of the small scenario");

        // The small scenario's flood at interval 20 is on port 7000.
        let md = parse_metadata("dstPort=7000").unwrap();
        let ex =
            Engine::extract(&ExtractRequest::new(&flows, &md, 1000).miner(MinerKind::FpGrowth));
        assert!(
            ex.itemsets
                .iter()
                .any(|s| s.to_string().contains("dstPort=7000")),
            "flood recovered from the file"
        );
        std::fs::remove_file(&path).ok();
    }
}
