//! # anomex — Anomaly Extraction in Backbone Networks Using Association Rules
//!
//! A complete Rust implementation of Brauckhoff, Dimitropoulos, Wagner &
//! Salamatian, *Anomaly Extraction in Backbone Networks Using Association
//! Rules* (ACM IMC 2009; extended version IEEE/ACM Transactions on
//! Networking 20(6), 2012).
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`netflow`] | flow records, the seven traffic features, NetFlow v5 codec, traces & interval streaming |
//! | [`detector`] | KL-distance histogram detectors, histogram cloning, iterative bin identification, l-of-n voting, ROC analysis |
//! | [`mining`] | width-7 flow transactions, modified Apriori (maximal item-sets), FP-growth, Eclat |
//! | [`traffic`] | synthetic backbone workloads with per-flow ground truth (the SWITCH-trace stand-in) |
//! | [`core`] | the extraction pipeline: union pre-filter + maximal frequent item-set summaries, analytic voting models, evaluation harness |
//!
//! ## Quickstart
//!
//! ```
//! use anomex::prelude::*;
//!
//! // A workload with a planted flooding anomaly and exact ground truth.
//! let scenario = Scenario::small(7);
//!
//! // The paper's pipeline: 5 histogram detectors (k = 1024 bins,
//! // n = l = 3 clones), union pre-filter, maximal Apriori.
//! let mut config = ExtractionConfig::default();
//! config.interval_ms = scenario.interval_ms();
//! config.detector.training_intervals = 10;
//! config.min_support = 800;
//!
//! let mut pipeline = AnomalyExtractor::try_new(config).unwrap();
//! let mut found = false;
//! for i in 0..scenario.interval_count() {
//!     let interval = scenario.generate(i);
//!     if let Some(extraction) = pipeline.process_interval(&interval.flows).extraction {
//!         // A handful of item-sets summarize the anomalous flows.
//!         found |= extraction
//!             .itemsets
//!             .iter()
//!             .any(|set| set.to_string().contains("dstPort=7000"));
//!     }
//! }
//! assert!(found, "the planted flood was extracted");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use anomex_core as core;
pub use anomex_detector as detector;
pub use anomex_mining as mining;
pub use anomex_netflow as netflow;
pub use anomex_traffic as traffic;

/// The commonly-used types in one import.
pub mod prelude {
    pub use anomex_core::{
        classify_itemset, render_report, run_scenario, AnomalyExtractor, Engine, ExtractRequest,
        Extraction, ExtractionConfig, IntervalInput, MultiSourceExtractor, MultiStreamEvent,
        MultiStreamSummary, PrefilterMode, ReconfigRequest, ShardedExtractor, StreamEvent,
        StreamSummary, StreamingExtractor,
    };
    #[allow(deprecated)]
    pub use anomex_core::{extract_sharded, extract_with_metadata};
    pub use anomex_detector::{DetectorBank, DetectorConfig, MetaData, RocCurve};
    pub use anomex_mining::{ItemSet, MinerKind, Transaction, TransactionSet};
    pub use anomex_netflow::{
        FlowFeature, FlowRecord, FlowTrace, IntervalAssembler, MergeAssembler, MergeConfig,
        Protocol, SourceId, SourceSpec, SourcedFlow, TcpFlags,
    };
    pub use anomex_traffic::{table2_workload, AnomalyClass, EventSpec, Scenario};
}
