//! Offline stand-in for the [`serde`](https://docs.rs/serde/1) crate.
//!
//! The workspace annotates its data model with
//! `#[derive(Serialize, Deserialize)]` so downstream consumers with the
//! real serde can round-trip it, but nothing in-tree performs actual
//! serialization (there is no `serde_json` or similar in the dependency
//! graph). Since the build environment has no crates.io access, this
//! vendored crate supplies just enough for those annotations to compile:
//! the two marker traits and, behind the `derive` feature, no-op derive
//! macros of the same names. Swapping in the real serde is a
//! one-line `Cargo.toml` change — no source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for serializable types. The real trait's methods are not
/// reproduced because no in-tree code calls them.
pub trait Serialize {}

/// Marker for deserializable types. The real trait's methods are not
/// reproduced because no in-tree code calls them.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
