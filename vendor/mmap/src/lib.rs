//! Offline stand-in for the [memmap2](https://docs.rs/memmap2) crate.
//!
//! Implements the one thing the workspace needs: a **read-only** mapping
//! of a whole file, dereferencing to `&[u8]`. On unix the mapping is a
//! real `mmap(2)` private read-only mapping via raw `extern "C"`
//! bindings (no libc crate in the offline build environment); the file
//! descriptor is closed after mapping, which POSIX permits. Everywhere
//! else — and whenever `mmap` itself fails (e.g. a pseudo-file that
//! cannot be mapped) — the stand-in falls back to reading the file into
//! a heap buffer, so callers get identical bytes either way and never
//! have to care which path was taken. [`Mmap::is_mapped`] reports which
//! one it was, for diagnostics and benchmarks.
//!
//! Deliberate simplifications vs the real crate: only whole-file
//! read-only maps (no `MmapMut`, no offsets/lengths, no advise/lock),
//! and the constructor takes a path ([`Mmap::open`]) instead of the real
//! crate's `unsafe Mmap::map(&file)` — the safety argument (the file
//! must not be truncated while mapped) is the caller's either way, and
//! the heap fallback makes a safe constructor honest here.

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    //! Raw `mmap(2)`/`munmap(2)` bindings — just enough for a private
    //! read-only whole-file mapping.

    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

enum Inner {
    /// A live `mmap` region; unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// The heap fallback (non-unix targets, empty files, `mmap` failure).
    Heap(Vec<u8>),
}

/// A read-only view of a whole file: memory-mapped when the platform
/// allows it, heap-buffered otherwise.
pub struct Mmap {
    inner: Inner,
}

// SAFETY: the mapping is private and read-only for its whole lifetime;
// no interior mutability exists on any path.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `path` read-only, falling back to a heap read when mapping is
    /// unavailable or fails.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened
    /// or (on the fallback path) read.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        {
            // Zero-length mmap is EINVAL; an empty heap buffer is exact.
            if len > 0 && len <= usize::MAX as u64 {
                use std::os::unix::io::AsRawFd;
                let len = len as usize;
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if !sys::map_failed(ptr) {
                    return Ok(Mmap {
                        inner: Inner::Mapped {
                            ptr: ptr as *const u8,
                            len,
                        },
                    });
                }
            }
        }
        let mut buf = Vec::with_capacity(len.min(usize::MAX as u64) as usize);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Heap(buf),
        })
    }

    /// Whether this view is a live memory mapping (`false` on the heap
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Heap(_) => false,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives
            // until Drop, and the mapping is never written through.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Heap(buf) => buf,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: exactly the region the successful mmap returned.
                unsafe {
                    sys::munmap(*ptr as *mut std::ffi::c_void, *len);
                }
            }
            Inner::Heap(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("anomex-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("contents");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_be_bytes()).collect();
        File::create(&path).unwrap().write_all(&data).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(&map[..], &data[..]);
        assert_eq!(map.as_ref(), &data[..]);
        if cfg!(unix) {
            assert!(map.is_mapped(), "regular files map on unix");
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "zero-length maps are EINVAL");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::open(temp_path("missing-never-created")).is_err());
    }

    #[test]
    fn debug_mentions_len() {
        let path = temp_path("debug");
        File::create(&path).unwrap().write_all(b"abc").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(format!("{map:?}").contains('3'), "{map:?}");
        std::fs::remove_file(&path).unwrap();
    }
}
