//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stand-in: they accept the same attribute grammar (`#[serde(...)]`)
//! but expand to nothing, because no in-tree code serializes.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
