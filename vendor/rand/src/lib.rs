//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.9) crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the exact 0.9 API surface the workspace uses —
//! [`Rng::random`], [`Rng::random_range`], [`rngs::StdRng`] and
//! [`SeedableRng::seed_from_u64`] — over a xoshiro256++ core seeded via
//! SplitMix64. Streams are deterministic per seed (the property the
//! traffic generators rely on) but are **not** bit-compatible with the
//! real `rand::rngs::StdRng` (ChaCha12); nothing in the workspace
//! depends on the exact stream, only on seed-determinism and uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random `u64`s — the subset of `rand_core::RngCore` the
/// workspace exercises.
pub trait RngCore {
    /// Next 64 uniformly-distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly-distributed random bits (upper half of
    /// [`next_u64`](Self::next_u64), which has the better-mixed bits in
    /// xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's whole domain (`[0, 1)`
    /// for floats).
    fn random<T: Uniformable>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly over their whole domain.
pub trait Uniformable: Sized {
    /// Draw one uniform value from `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniformable_int {
    ($($t:ty),*) => {$(
        impl Uniformable for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniformable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniformable for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniformable for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniformable for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `span` (`span > 0`) via Lemire's multiply-shift
/// with a widening 128-bit product. The bias of the plain multiply-shift
/// is at most 2⁻⁶⁴·span, far below anything the synthetic workloads or
/// tests can observe, so no rejection step is needed.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: the +1 below would overflow.
                    return rng.next_u64() as $t;
                }
                (start as i128 + sample_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Uniformable::sample_uniform(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = Uniformable::sample_uniform(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the standard
    /// seeding recipe for xoshiro-family generators) and build the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used only to expand `u64` seeds into full seed material.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the real `rand` `StdRng` (ChaCha12) — see the crate docs for
    /// why that is fine here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&z));
            let f = rng.random_range(0.25f64..=1.0);
            assert!((0.25..=1.0).contains(&f));
            let p = rng.random_range(1024u16..=u16::MAX);
            assert!(p >= 1024);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn full_range_bounds_hit() {
        let mut rng = StdRng::seed_from_u64(11);
        // The all-inclusive u8 range exercises the span == MAX guard
        // at type scale: every draw must be valid.
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = rng.random_range(0u8..=u8::MAX);
            seen_high |= v > 200;
        }
        assert!(seen_high);
    }
}
