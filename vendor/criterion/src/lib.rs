//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! wall-clock measurement loop: per benchmark it warms up, sizes an
//! iteration batch to the routine's cost, takes `sample_size` samples,
//! and prints min/median/max per-iteration times in criterion's
//! familiar `time: [low mid high]` shape. No statistical analysis,
//! plots, or baseline persistence — swap the real criterion in via
//! `Cargo.toml` when crates.io access is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. The stand-in
/// runs one setup per measured batch regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch freely.
    SmallInput,
    /// Inputs are expensive; keep batches small.
    LargeInput,
    /// Exactly one input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` — e.g. `apriori/3000`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter — for groups benching one function across
    /// inputs.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// The benchmark driver handed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            filter: None,
        }
    }
}

impl Criterion {
    /// Apply CLI arguments (`cargo bench -- <filter>`); criterion's
    /// harness flags (`--bench`, `--test`, ...) are accepted and
    /// ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--quiet" | "--verbose" | "--noplot" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                flag if flag.starts_with("--") => {
                    // Unknown harness flag: skip a value if one follows.
                    let _ = args.next();
                }
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Override the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: None,
        }
    }

    fn run_one(&self, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: sample_size.max(2),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, samples, &mut f);
        self
    }

    /// Run one benchmark in this group with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (No cross-benchmark reporting in the stand-in,
    /// so this is a no-op beyond dropping the group.)
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmark `routine` by timing batches of calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and size the batch so one sample costs ~1-10 ms.
        let once = Self::time(|| {
            black_box(routine());
        });
        let iters = Self::batch_iters(once);
        self.samples = (0..self.sample_size)
            .map(|_| {
                let elapsed = Self::time(|| {
                    for _ in 0..iters {
                        black_box(routine());
                    }
                });
                elapsed / u32::try_from(iters).unwrap_or(u32::MAX)
            })
            .collect();
    }

    /// Benchmark `routine` on fresh inputs from `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                Self::time(|| {
                    black_box(routine(input));
                })
            })
            .collect();
    }

    fn time(body: impl FnOnce()) -> Duration {
        let start = Instant::now();
        body();
        start.elapsed()
    }

    /// Iterations per sample so that a sample takes roughly 2 ms, capped
    /// to keep total bench time bounded for slow routines.
    fn batch_iters(once: Duration) -> u64 {
        let nanos = once.as_nanos().max(1);
        (2_000_000 / nanos).clamp(1, 100_000) as u64
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (benchmark ran no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let low = sorted[0];
        let mid = sorted[sorted.len() / 2];
        let high = sorted[sorted.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]",
            Self::fmt_duration(low),
            Self::fmt_duration(mid),
            Self::fmt_duration(high),
        );
    }

    fn fmt_duration(d: Duration) -> String {
        let nanos = d.as_nanos();
        if nanos < 1_000 {
            format!("{nanos} ns")
        } else if nanos < 1_000_000 {
            format!("{:.2} µs", nanos as f64 / 1_000.0)
        } else if nanos < 1_000_000_000 {
            format!("{:.2} ms", nanos as f64 / 1_000_000.0)
        } else {
            format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
        }
    }
}

/// Bundle bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_ids() {
        assert_eq!(
            BenchmarkId::new("apriori", 3000).to_string(),
            "apriori/3000"
        );
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            );
        });
        assert_eq!(setups, 2);
    }
}
