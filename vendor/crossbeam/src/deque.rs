//! Work-stealing deques — the safe stand-in for `crossbeam-deque`.
//!
//! One [`WorkDeque`] per pool worker plus one shared injector give the
//! scheduler the classic Chase–Lev shape: the owning worker pushes and
//! pops at the **back** (LIFO, so freshly forked subtasks run hot in
//! cache), while thieves steal from the **front** (FIFO, so the oldest
//! — typically largest — task migrates). This crate is
//! `forbid(unsafe_code)`, so the lock-free Chase–Lev ring buffer is
//! approximated by a short critical section around a `VecDeque`: the
//! owner and a thief only contend when the deque is nearly empty, which
//! matches the Chase–Lev contention profile without the unsafe memory
//! reclamation, and [`steal`](WorkDeque::steal) uses `try_lock` so a
//! thief never convoys behind a busy owner — it just moves to the next
//! victim.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A single work-stealing deque: owner at the back, thieves at the
/// front.
pub struct WorkDeque<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> std::fmt::Debug for WorkDeque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WorkDeque { .. }")
    }
}

impl<T> Default for WorkDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkDeque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Self {
        WorkDeque {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner push at the back. Returns the depth (length) after the
    /// push, so the scheduler can keep a high-water mark without a
    /// second lock round-trip.
    ///
    /// # Panics
    ///
    /// Panics if the deque mutex was poisoned (a holder panicked —
    /// impossible through this API: no user code runs under the lock).
    pub fn push(&self, item: T) -> usize {
        let mut items = self.items.lock().expect("deque mutex poisoned");
        items.push_back(item);
        items.len()
    }

    /// Owner pop at the back (LIFO — the most recently pushed item).
    ///
    /// # Panics
    ///
    /// As [`push`](Self::push).
    pub fn pop(&self) -> Option<T> {
        self.items.lock().expect("deque mutex poisoned").pop_back()
    }

    /// Thief pop at the front (FIFO — the oldest item). Non-blocking:
    /// returns `None` when the deque is empty **or** momentarily locked
    /// by its owner, so a thief sweeps on to the next victim instead of
    /// convoying.
    pub fn steal(&self) -> Option<T> {
        match self.items.try_lock() {
            Ok(mut items) => items.pop_front(),
            Err(_) => None,
        }
    }

    /// Blocking pop at the front — used on the injector, which has no
    /// single owner to convoy behind.
    ///
    /// # Panics
    ///
    /// As [`push`](Self::push).
    pub fn take(&self) -> Option<T> {
        self.items.lock().expect("deque mutex poisoned").pop_front()
    }

    /// Current depth.
    ///
    /// # Panics
    ///
    /// As [`push`](Self::push).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.lock().expect("deque mutex poisoned").len()
    }

    /// Whether the deque is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo() {
        let d = WorkDeque::new();
        for i in 0..4 {
            assert_eq!(d.push(i), i + 1);
        }
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn thieves_steal_fifo_from_the_front() {
        let d = WorkDeque::new();
        d.push(10);
        d.push(20);
        d.push(30);
        assert_eq!(d.steal(), Some(10));
        assert_eq!(d.steal(), Some(20));
        assert_eq!(d.pop(), Some(30));
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn take_drains_fifo_like_an_injector() {
        let d = WorkDeque::new();
        d.push('a');
        d.push('b');
        assert_eq!(d.take(), Some('a'));
        assert_eq!(d.take(), Some('b'));
        assert_eq!(d.take(), None);
        assert!(d.is_empty());
    }
}
