//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam/0.8).
//!
//! Provides [`channel::bounded`] with crossbeam's API shape over
//! `std::sync::mpsc::sync_channel`: cloneable senders, blocking
//! back-pressured sends, and receivers that iterate until every sender
//! hangs up. Single-consumer only (std mpsc), which is all the
//! workspace's exporter → collector pipelines need; swapping the real
//! crossbeam in is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels with back-pressure.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up; the
    /// unsent value is returned to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel. Cloneable; `send` blocks
    /// while the channel is full.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// The receiving half of a bounded channel. Iterating consumes
    /// messages until all senders disconnect.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a channel holding at most `cap` in-flight messages
    /// (`cap == 0` gives a rendezvous channel, like crossbeam).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiver has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking while the channel is
        /// empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once every sender has hung up and the
        /// channel is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Iterate over messages, blocking between them, until every
        /// sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_flow_in_order() {
            let (tx, rx) = bounded::<u32>(4);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.into_iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded::<u32>(8);
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || tx.send(1).unwrap());
            let b = std::thread::spawn(move || tx2.send(2).unwrap());
            a.join().unwrap();
            b.join().unwrap();
            let mut got: Vec<u32> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
