//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam/0.8).
//!
//! Provides [`channel::bounded`] with crossbeam's API shape over
//! `std::sync::mpsc::sync_channel`: cloneable senders, blocking
//! back-pressured sends, and receivers that iterate until every sender
//! hangs up. Single-consumer only (std mpsc), which is all the
//! workspace's exporter → collector pipelines need; swapping the real
//! crossbeam in is a manifest-only change.
//!
//! Also provides [`scope`]/[`thread::Scope`] with crossbeam's scoped-thread
//! API shape over `std::thread::scope`: spawned closures may borrow from
//! the enclosing stack frame, every thread is joined before `scope`
//! returns, and the result surfaces panics as `std::thread::Result` the
//! way crossbeam does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use thread::scope;

/// Scoped threads with crossbeam's API shape over `std::thread::scope`.
pub mod thread {
    /// A scope handed to [`scope`]'s closure; spawn borrowing threads
    /// through it.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; [`join`](ScopedJoinHandle::join) it to
    /// collect the closure's result (threads not joined explicitly are
    /// joined when the scope ends, as with crossbeam).
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. Like crossbeam (and unlike
        /// `std`), the closure receives the scope so it can spawn nested
        /// threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. All threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature by returning `std::thread::Result`;
    /// with the std backing, a panicking child propagates its panic at
    /// scope exit instead, so the `Err` arm is never actually produced.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
            let (left, right) = data.split_at(4);
            let total = scope(|s| {
                let a = s.spawn(|_| left.iter().sum::<u64>());
                let b = s.spawn(|_| right.iter().sum::<u64>());
                a.join().unwrap() + b.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, 36);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let n = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }

        #[test]
        fn unjoined_threads_finish_before_scope_returns() {
            use std::sync::atomic::{AtomicU32, Ordering};
            let counter = AtomicU32::new(0);
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }
    }
}

/// Multi-producer channels with back-pressure.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up; the
    /// unsent value is returned to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel. Cloneable; `send` blocks
    /// while the channel is full.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// The receiving half of a bounded channel. Iterating consumes
    /// messages until all senders disconnect.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a channel holding at most `cap` in-flight messages
    /// (`cap == 0` gives a rendezvous channel, like crossbeam).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiver has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking while the channel is
        /// empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once every sender has hung up and the
        /// channel is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Iterate over messages, blocking between them, until every
        /// sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_flow_in_order() {
            let (tx, rx) = bounded::<u32>(4);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.into_iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded::<u32>(8);
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || tx.send(1).unwrap());
            let b = std::thread::spawn(move || tx2.send(2).unwrap());
            a.join().unwrap();
            b.join().unwrap();
            let mut got: Vec<u32> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
