//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam/0.8).
//!
//! Provides [`channel::bounded`] with crossbeam's API shape over
//! `std::sync::mpsc::sync_channel`: cloneable senders, blocking
//! back-pressured sends, and receivers that iterate until every sender
//! hangs up. Single-consumer only (std mpsc), which is all the
//! workspace's exporter → collector pipelines need; swapping the real
//! crossbeam in is a manifest-only change.
//!
//! Also provides [`scope`]/[`thread::Scope`] with crossbeam's scoped-thread
//! API shape over `std::thread::scope`: spawned closures may borrow from
//! the enclosing stack frame, every thread is joined before `scope`
//! returns, and the result surfaces panics as `std::thread::Result` the
//! way crossbeam does.
//!
//! Finally, [`pool::WorkerPool`] is a long-lived work-stealing pool in
//! the spirit of crossbeam's deque-based executors: threads are
//! spawned once, each owning a [`deque::WorkDeque`] it pushes and pops
//! LIFO while idle peers steal FIFO from the front; external
//! [`pool::WorkerPool::submit`] jobs and `run_tree` roots enter through
//! a shared injector queue. Beyond flat batches
//! ([`pool::WorkerPool::run_ordered`]) the pool runs fork/join task
//! trees ([`pool::WorkerPool::run_tree`]): jobs receive a
//! [`pool::TreeScope`] through which they may spawn ordered child
//! tasks, and the results of the whole tree merge deterministically in
//! spawn order — the primitive behind task-parallel recursive search
//! (conditional-tree mining, candidate-generation blocks). Scheduling
//! is observable ([`pool::WorkerPool::steals`],
//! [`pool::WorkerPool::max_queue_depth`],
//! [`pool::WorkerPool::tree_tasks`]) so a single-CPU CI box can verify
//! stealing engages via counters and bit-equality rather than wall
//! clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deque;

pub use pool::{run_tree_inline, PoolStats, TreeJob, TreeScope, WorkerPool};
pub use thread::scope;

/// Scoped threads with crossbeam's API shape over `std::thread::scope`.
pub mod thread {
    /// A scope handed to [`scope`]'s closure; spawn borrowing threads
    /// through it.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; [`join`](ScopedJoinHandle::join) it to
    /// collect the closure's result (threads not joined explicitly are
    /// joined when the scope ends, as with crossbeam).
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. Like crossbeam (and unlike
        /// `std`), the closure receives the scope so it can spawn nested
        /// threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack. All threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature by returning `std::thread::Result`;
    /// with the std backing, a panicking child propagates its panic at
    /// scope exit instead, so the `Err` arm is never actually produced.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
            let (left, right) = data.split_at(4);
            let total = scope(|s| {
                let a = s.spawn(|_| left.iter().sum::<u64>());
                let b = s.spawn(|_| right.iter().sum::<u64>());
                a.join().unwrap() + b.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, 36);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let n = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }

        #[test]
        fn unjoined_threads_finish_before_scope_returns() {
            use std::sync::atomic::{AtomicU32, Ordering};
            let counter = AtomicU32::new(0);
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        }
    }
}

/// A persistent work-stealing worker pool: threads spawned once, each
/// owning a deque; jobs submitted as closures through an injector.
pub mod pool {
    use crate::deque::WorkDeque;
    use std::cell::{Cell, RefCell};
    use std::collections::VecDeque;
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
    use std::thread::JoinHandle;

    /// A unit of work: an owned closure, so jobs can outlive the caller's
    /// stack frame and run on threads spawned long before it existed.
    type Job = Box<dyn FnOnce() + Send + 'static>;

    thread_local! {
        /// The stripe the current thread owns, when it is a pool worker:
        /// the scheduler it belongs to (weak, so a worker's own TLS never
        /// keeps its pool alive) and its stripe index. Lets
        /// [`TreeScope::fork`] push to the forking worker's own deque —
        /// the LIFO hot path of work stealing.
        static WORKER: RefCell<Option<(Weak<Scheduler>, usize)>> = const { RefCell::new(None) };
    }

    /// The work-stealing scheduler core shared by every worker of one
    /// pool.
    ///
    /// Topology: one [`WorkDeque`] **stripe** per worker (owner pushes
    /// and pops LIFO at the back, thieves steal FIFO from the front)
    /// plus one **injector** deque for work arriving from outside the
    /// pool ([`WorkerPool::submit`], [`WorkerPool::run_ordered`]
    /// batches, [`WorkerPool::run_tree`] roots). A worker looks for
    /// work in that order — own stripe, injector, then one randomized
    /// sweep over the other stripes — and only sleeps when a full scan
    /// finds nothing.
    ///
    /// Sleep/wake uses a Dekker-style pairing instead of pushing every
    /// job under one central mutex: a pusher increments `pending`
    /// *before* publishing the job and only takes the sleep mutex when
    /// `sleepers > 0`; a would-be sleeper increments `sleepers` (under
    /// the sleep mutex) *before* re-checking `pending`. Whichever side
    /// observes the other's increment prevents the lost wakeup, so the
    /// busy-pool fast path never touches the mutex.
    struct Scheduler {
        /// FIFO entry queue for external submissions and tree roots.
        injector: WorkDeque<Job>,
        /// Per-worker deques, indexed by worker.
        stripes: Vec<WorkDeque<Job>>,
        /// Jobs queued (anywhere) but not yet claimed by a worker.
        pending: AtomicU64,
        /// Workers currently asleep on `ready`.
        sleepers: AtomicU64,
        /// The shutdown flag, written only under the sleep mutex.
        sleep: Mutex<bool>,
        ready: Condvar,
        /// Tree tasks (roots + forks) ever dispatched through
        /// [`WorkerPool::run_tree`] — observability for benches and tests
        /// that must prove recursive work really ran as pool tasks.
        tree_tasks: AtomicU64,
        /// Successful steals from a peer's stripe (injector pops are not
        /// steals) — proves work migration without wall-clock timing.
        steals: AtomicU64,
        /// High-water mark of queue depth observed when **tree** tasks
        /// were pushed (stripe depth at fork, injector depth at root
        /// submission). Calibration and flat batches leave it untouched
        /// so it reflects mining fan-out, not bookkeeping traffic.
        max_queue_depth: AtomicU64,
        /// Measured per-task dispatch overhead in nanoseconds; 0 until
        /// [`WorkerPool::calibrate_dispatch_overhead`] runs.
        overhead_ns: AtomicU64,
    }

    impl std::fmt::Debug for Scheduler {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Scheduler { .. }")
        }
    }

    /// A tiny xorshift step — victim-selection randomization without an
    /// RNG dependency.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    impl Scheduler {
        fn new(width: usize) -> Self {
            Scheduler {
                injector: WorkDeque::new(),
                stripes: (0..width).map(|_| WorkDeque::new()).collect(),
                pending: AtomicU64::new(0),
                sleepers: AtomicU64::new(0),
                sleep: Mutex::new(false),
                ready: Condvar::new(),
                tree_tasks: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                max_queue_depth: AtomicU64::new(0),
                overhead_ns: AtomicU64::new(0),
            }
        }

        /// Queue `job` through the injector (external submissions, flat
        /// batches, tree roots).
        fn inject(&self, job: Job, tree_depth: bool) {
            self.pending.fetch_add(1, Ordering::SeqCst);
            let depth = self.injector.push(job);
            if tree_depth {
                self.note_depth(depth);
            }
            self.wake();
        }

        /// Queue `job` on the current worker's own stripe when this
        /// thread is a worker of this scheduler; fall back to the
        /// injector otherwise (a fork from a non-worker thread).
        fn push_local(self: &Arc<Self>, job: Job, tree_depth: bool) {
            let stripe = WORKER.with(|w| {
                w.borrow().as_ref().and_then(|(scheduler, index)| {
                    (Weak::as_ptr(scheduler) == Arc::as_ptr(self)).then_some(*index)
                })
            });
            match stripe {
                Some(index) => {
                    self.pending.fetch_add(1, Ordering::SeqCst);
                    let depth = self.stripes[index].push(job);
                    if tree_depth {
                        self.note_depth(depth);
                    }
                    self.wake();
                }
                None => self.inject(job, tree_depth),
            }
        }

        /// Live depth of the queue a task pushed from this thread would
        /// land on: the thread's own stripe when it is one of this
        /// scheduler's workers, the injector otherwise.
        fn local_depth(self: &Arc<Self>) -> usize {
            WORKER
                .with(|w| {
                    w.borrow().as_ref().and_then(|(scheduler, index)| {
                        (Weak::as_ptr(scheduler) == Arc::as_ptr(self))
                            .then(|| self.stripes[*index].len())
                    })
                })
                .unwrap_or_else(|| self.injector.len())
        }

        fn note_depth(&self, depth: usize) {
            self.max_queue_depth
                .fetch_max(depth as u64, Ordering::Relaxed);
        }

        /// Wake sleeping workers after a push. See the type docs for why
        /// reading `sleepers` after the `pending` increment is
        /// lost-wakeup-free; taking the mutex before notifying closes
        /// the window between a sleeper's re-check and its wait.
        fn wake(&self) {
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _closed = self.sleep.lock().expect("pool mutex poisoned");
                self.ready.notify_all();
            }
        }

        /// One full scan for work: own stripe (LIFO), the injector
        /// (FIFO), then every other stripe once in randomized order.
        fn find_job(&self, me: usize, rng: &mut u64) -> Option<Job> {
            if let Some(job) = self.stripes[me].pop() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
            if let Some(job) = self.injector.take() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
            let n = self.stripes.len();
            if n > 1 {
                let offset = (xorshift(rng) % n as u64) as usize;
                for step in 0..n {
                    let victim = (offset + step) % n;
                    if victim == me {
                        continue;
                    }
                    if let Some(job) = self.stripes[victim].steal() {
                        self.pending.fetch_sub(1, Ordering::SeqCst);
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                }
            }
            None
        }
    }

    fn worker_loop(shared: &Arc<Scheduler>, me: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::downgrade(shared), me)));
        // Distinct odd seeds per worker so victim sweeps decorrelate.
        let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((me as u64 + 1) << 17) | 1;
        loop {
            if let Some(job) = shared.find_job(me, &mut rng) {
                // Contain panics so one bad job cannot take the worker
                // down; run_ordered/run_tree re-throw on the caller.
                let _ = catch_unwind(AssertUnwindSafe(job));
                continue;
            }
            // Nothing claimable this scan: sleep — or exit once the pool
            // is closed *and* drained (`pending == 0` means no queued
            // job anywhere; forks still to come can only be pushed by a
            // worker that is itself awake running a job, and it will
            // drain its own stripe).
            let mut closed = shared.sleep.lock().expect("pool mutex poisoned");
            shared.sleepers.fetch_add(1, Ordering::SeqCst);
            loop {
                if shared.pending.load(Ordering::SeqCst) > 0 {
                    break;
                }
                if *closed {
                    shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                    // Peers may be asleep waiting for this same drained
                    // state; pass the exit signal on.
                    shared.ready.notify_all();
                    return;
                }
                closed = shared.ready.wait(closed).expect("pool mutex poisoned");
            }
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// A long-lived pool of worker threads scheduled by work stealing:
    /// each worker owns a deque it pushes and pops LIFO while idle peers
    /// steal FIFO from the front; external work enters through a shared
    /// injector queue.
    ///
    /// Workers are spawned once at construction and live until the pool
    /// is dropped, so submitting a batch of jobs costs queue pushes
    /// instead of thread spawns — the difference that matters when the
    /// same pool serves every measurement interval of a stream.
    ///
    /// A job that panics is contained: the panic is caught, the worker
    /// survives, and (for [`run_ordered`](WorkerPool::run_ordered)) the
    /// payload is re-thrown on the calling thread. Dropping the pool
    /// closes the injector, lets queued jobs drain, and joins every
    /// worker.
    ///
    /// Jobs must not submit to — and then wait on — the pool they run
    /// on; with every worker blocked waiting, no one is left to run the
    /// nested job. ([`TreeScope::fork`] exists precisely so recursive
    /// work never needs to.)
    #[derive(Debug)]
    pub struct WorkerPool {
        shared: Arc<Scheduler>,
        workers: Vec<JoinHandle<()>>,
    }

    /// A point-in-time snapshot of one pool's scheduling counters.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct PoolStats {
        /// Tree tasks (roots + forks) ever dispatched via `run_tree`.
        pub tree_tasks: u64,
        /// Successful steals of a task from a peer worker's deque.
        pub steals: u64,
        /// High-water mark of tree-task queue depth (see
        /// [`WorkerPool::max_queue_depth`]).
        pub max_queue_depth: u64,
        /// Calibrated per-task dispatch overhead in nanoseconds (0 =
        /// never calibrated).
        pub dispatch_overhead_ns: u64,
    }

    impl WorkerPool {
        /// Spawn a pool of `threads` persistent workers.
        ///
        /// # Panics
        ///
        /// Panics if the operating system refuses to spawn a thread.
        #[must_use]
        pub fn new(threads: NonZeroUsize) -> Self {
            let shared = Arc::new(Scheduler::new(threads.get()));
            let workers = (0..threads.get())
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("anomex-pool-{i}"))
                        .spawn(move || worker_loop(&shared, i))
                        .expect("failed to spawn pool worker")
                })
                .collect();
            WorkerPool { shared, workers }
        }

        /// Number of worker threads.
        #[must_use]
        pub fn threads(&self) -> usize {
            self.workers.len()
        }

        /// Submit one fire-and-forget job (FIFO through the injector).
        pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
            self.shared.inject(Box::new(job), false);
        }

        /// Run a batch of jobs on the pool and return their results **in
        /// submission order** — the scatter/gather primitive behind every
        /// deterministic parallel pass. Blocks until the whole batch
        /// finishes.
        ///
        /// # Panics
        ///
        /// Re-throws the panic of the earliest-submitted job that
        /// panicked (after the batch has drained, so the pool stays
        /// consistent).
        #[must_use]
        pub fn run_ordered<R: Send + 'static>(
            &self,
            jobs: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
        ) -> Vec<R> {
            let n = jobs.len();
            if n == 0 {
                return Vec::new();
            }
            let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
            for (i, job) in jobs.into_iter().enumerate() {
                let tx = tx.clone();
                self.shared.inject(
                    Box::new(move || {
                        let result = catch_unwind(AssertUnwindSafe(job));
                        // The receiver outlives the batch; ignore a send
                        // failure anyway so a worker never panics here.
                        let _ = tx.send((i, result));
                    }),
                    false,
                );
            }
            drop(tx);
            let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::new();
            slots.resize_with(n, || None);
            for _ in 0..n {
                let (i, result) = rx.recv().expect("pool worker vanished mid-batch");
                slots[i] = Some(result);
            }
            // Propagate the earliest panic deterministically.
            let mut out = Vec::with_capacity(n);
            for slot in slots {
                match slot.expect("every batch slot was filled") {
                    Ok(r) => out.push(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        }

        /// Tree tasks (roots plus forked children) ever dispatched
        /// through [`run_tree`](Self::run_tree) on this pool.
        #[must_use]
        pub fn tree_tasks(&self) -> u64 {
            self.shared.tree_tasks.load(Ordering::Relaxed)
        }

        /// Tasks ever stolen from a peer worker's deque on this pool.
        /// Injector pops are not steals; a nonzero count proves work
        /// actually migrated between workers — the signal the 1-CPU CI
        /// container uses in place of wall-clock speedup.
        #[must_use]
        pub fn steals(&self) -> u64 {
            self.shared.steals.load(Ordering::Relaxed)
        }

        /// High-water mark of queue depth observed at tree-task pushes
        /// (a worker's own deque at [`TreeScope::fork`], the injector at
        /// root submission). Gauges how deeply the miners fan out;
        /// untouched by `submit`/`run_ordered` bookkeeping traffic.
        #[must_use]
        pub fn max_queue_depth(&self) -> u64 {
            self.shared.max_queue_depth.load(Ordering::Relaxed)
        }

        /// Live depth of the queue a task pushed from the calling thread
        /// would land on: the thread's own deque when it is one of this
        /// pool's workers, the injector otherwise. The cost-model input
        /// for adaptive fork coarsening at non-worker call sites.
        #[must_use]
        pub fn local_queue_depth(&self) -> usize {
            self.shared.local_depth()
        }

        /// Every scheduling counter in one snapshot.
        #[must_use]
        pub fn stats(&self) -> PoolStats {
            PoolStats {
                tree_tasks: self.tree_tasks(),
                steals: self.steals(),
                max_queue_depth: self.max_queue_depth(),
                dispatch_overhead_ns: self.dispatch_overhead_ns(),
            }
        }

        /// The measured per-task dispatch overhead in nanoseconds, or 0
        /// when [`calibrate_dispatch_overhead`](Self::calibrate_dispatch_overhead)
        /// has not run on this pool (callers fall back to a recorded
        /// constant).
        #[must_use]
        pub fn dispatch_overhead_ns(&self) -> u64 {
            self.shared.overhead_ns.load(Ordering::Relaxed)
        }

        /// Measure this pool's per-task dispatch overhead by timing a
        /// batch of trivial jobs through the scheduler, store it for
        /// [`dispatch_overhead_ns`](Self::dispatch_overhead_ns), and
        /// return it. The result is clamped to [1µs, 200µs] so a noisy
        /// or oversubscribed box cannot push fork thresholds into the
        /// absurd. Runs through `run_ordered`, so neither `tree_tasks`
        /// nor `max_queue_depth` is perturbed.
        pub fn calibrate_dispatch_overhead(&self) -> u64 {
            const JOBS: u64 = 256;
            let batch: Vec<Box<dyn FnOnce() + Send + 'static>> = (0..JOBS)
                .map(|_| Box::new(|| ()) as Box<dyn FnOnce() + Send + 'static>)
                .collect();
            let started = std::time::Instant::now();
            let _: Vec<()> = self.run_ordered(batch);
            let per_job = (started.elapsed().as_nanos() as u64 / JOBS).clamp(1_000, 200_000);
            self.shared.overhead_ns.store(per_job, Ordering::Relaxed);
            per_job
        }

        /// Run a fork/join tree of jobs on the pool and return every
        /// task's result **in spawn order** (pre-order over the task
        /// tree: roots in submission order, each task's children in fork
        /// order, children before later siblings). Blocks until the
        /// whole tree has drained.
        ///
        /// Each job receives a [`TreeScope`] through which it may
        /// [`fork`](TreeScope::fork) child jobs; forks never block, so —
        /// unlike nesting [`run_ordered`](Self::run_ordered) inside a
        /// job — recursive decomposition cannot deadlock the pool.
        /// Result order depends only on the fork structure, never on
        /// thread scheduling: the deterministic-merge contract the
        /// task-parallel miners are built on.
        ///
        /// # Panics
        ///
        /// If any task panics, the panic with the lexicographically
        /// smallest spawn path is re-thrown on the caller after the tree
        /// has drained (children already forked by a panicking task
        /// still run); the workers survive.
        #[must_use]
        pub fn run_tree<R: Send + 'static>(&self, roots: Vec<TreeJob<R>>) -> Vec<R> {
            if roots.is_empty() {
                return Vec::new();
            }
            let state = Arc::new(TreeState {
                scheduler: Arc::clone(&self.shared),
                width: self.threads(),
                progress: Mutex::new(TreeProgress {
                    pending: roots.len(),
                    results: Vec::new(),
                    panic: None,
                }),
                done: Condvar::new(),
            });
            for (i, job) in roots.into_iter().enumerate() {
                self.shared
                    .inject(tree_task(&state, vec![i as u32], job), true);
            }
            let mut progress = state.progress.lock().expect("tree mutex poisoned");
            while progress.pending > 0 {
                progress = state.done.wait(progress).expect("tree mutex poisoned");
            }
            let TreeProgress { results, panic, .. } = std::mem::take(&mut *progress);
            drop(progress);
            if let Some((_, payload)) = panic {
                std::panic::resume_unwind(payload);
            }
            let mut results = results;
            results.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            results.into_iter().map(|(_, r)| r).collect()
        }
    }

    /// A fork/join tree job: runs with a [`TreeScope`] through which it
    /// may fork ordered child jobs, and returns one result.
    pub type TreeJob<R> = Box<dyn for<'s> FnOnce(&TreeScope<'s, R>) -> R + Send + 'static>;

    /// Shared bookkeeping of one [`WorkerPool::run_tree`] invocation.
    struct TreeState<R> {
        scheduler: Arc<Scheduler>,
        width: usize,
        progress: Mutex<TreeProgress<R>>,
        done: Condvar,
    }

    /// Mutable tree progress: results keyed by spawn path, the pending
    /// task count, and the first (smallest-path) panic payload.
    struct TreeProgress<R> {
        pending: usize,
        results: Vec<(Vec<u32>, R)>,
        panic: Option<(Vec<u32>, Box<dyn std::any::Any + Send>)>,
    }

    impl<R> Default for TreeProgress<R> {
        fn default() -> Self {
            TreeProgress {
                pending: 0,
                results: Vec::new(),
                panic: None,
            }
        }
    }

    /// Wrap one tree job (root or fork) into a pool job that runs it
    /// with a scope, records its result under its spawn path, and
    /// signals the tree when the last task finishes.
    fn tree_task<R: Send + 'static>(
        state: &Arc<TreeState<R>>,
        path: Vec<u32>,
        job: TreeJob<R>,
    ) -> Job {
        let state = Arc::clone(state);
        state.scheduler.tree_tasks.fetch_add(1, Ordering::Relaxed);
        Box::new(move || {
            let scope = TreeScope {
                width: state.width,
                path: path.clone(),
                kids: Cell::new(0),
                runner: ScopeRunner::Pool(&state),
            };
            let result = catch_unwind(AssertUnwindSafe(|| job(&scope)));
            drop(scope);
            let mut progress = state.progress.lock().expect("tree mutex poisoned");
            match result {
                Ok(r) => progress.results.push((path, r)),
                Err(payload) => {
                    let smaller = match progress.panic.as_ref() {
                        None => true,
                        Some((earliest, _)) => path < *earliest,
                    };
                    if smaller {
                        progress.panic = Some((path, payload));
                    }
                }
            }
            progress.pending -= 1;
            if progress.pending == 0 {
                state.done.notify_all();
            }
        })
    }

    /// The per-task handle of a fork/join tree: fork child jobs, ask the
    /// execution width. Handed by [`WorkerPool::run_tree`] (children run
    /// as pool tasks) and by [`run_tree_inline`] (children run
    /// sequentially on the caller) — same job signature, bit-identical
    /// merged results.
    pub struct TreeScope<'s, R> {
        width: usize,
        path: Vec<u32>,
        kids: Cell<u32>,
        runner: ScopeRunner<'s, R>,
    }

    enum ScopeRunner<'s, R> {
        /// Sequential execution: forked children queue onto the caller's
        /// local worklist.
        Inline(&'s RefCell<VecDeque<(Vec<u32>, TreeJob<R>)>>),
        /// Pool execution: forked children go straight onto the shared
        /// deque.
        Pool(&'s Arc<TreeState<R>>),
    }

    impl<R> std::fmt::Debug for TreeScope<'_, R> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("TreeScope")
                .field("width", &self.width)
                .field("path", &self.path)
                .finish_non_exhaustive()
        }
    }

    impl<R: Send + 'static> TreeScope<'_, R> {
        /// The parallelism of the executor running this tree: the pool's
        /// worker count, or 1 under sequential execution. Jobs use this
        /// to decide whether forking is worth a queue operation.
        #[must_use]
        pub fn width(&self) -> usize {
            self.width
        }

        /// Live depth of the queue a [`fork`](Self::fork) from this task
        /// would land on: the running worker's own deque under pool
        /// execution (the injector when the task somehow runs off-pool),
        /// or the pending worklist under sequential execution. The
        /// cost-model input for adaptive fork coarsening — a deep local
        /// queue means the pool is saturated and finer forking buys
        /// nothing.
        #[must_use]
        pub fn queue_depth(&self) -> usize {
            match &self.runner {
                ScopeRunner::Inline(worklist) => worklist.borrow().len(),
                ScopeRunner::Pool(state) => state.scheduler.local_depth(),
            }
        }

        /// Fork one ordered child job. Never blocks: the child runs
        /// later (on a pool worker, or on the caller's worklist under
        /// sequential execution), and its result slots in after this
        /// task's — and after earlier-forked siblings' — in the merged
        /// output. Under pool execution the child is pushed onto the
        /// forking worker's own deque (LIFO for the owner, stealable
        /// FIFO by idle peers), so fork order never constrains which
        /// worker runs what — only the merge order of results.
        pub fn fork(&self, job: impl for<'a> FnOnce(&TreeScope<'a, R>) -> R + Send + 'static) {
            let child = self.kids.get();
            self.kids.set(child + 1);
            let mut path = Vec::with_capacity(self.path.len() + 1);
            path.extend_from_slice(&self.path);
            path.push(child);
            match &self.runner {
                ScopeRunner::Inline(worklist) => {
                    worklist.borrow_mut().push_back((path, Box::new(job)));
                }
                ScopeRunner::Pool(state) => {
                    {
                        let mut progress = state.progress.lock().expect("tree mutex poisoned");
                        progress.pending += 1;
                    }
                    let task = tree_task(*state, path, Box::new(job));
                    state.scheduler.push_local(task, true);
                }
            }
        }
    }

    /// Run a fork/join tree sequentially on the calling thread — the
    /// width-1 twin of [`WorkerPool::run_tree`], with the same job
    /// signature and the same spawn-order result contract, so callers
    /// can pick the executor per call site without touching the jobs.
    ///
    /// # Panics
    ///
    /// A panicking job propagates immediately (tasks not yet executed
    /// are abandoned), matching ordinary sequential execution.
    #[must_use]
    pub fn run_tree_inline<R: Send + 'static>(roots: Vec<TreeJob<R>>) -> Vec<R> {
        let worklist: RefCell<VecDeque<(Vec<u32>, TreeJob<R>)>> = RefCell::new(
            roots
                .into_iter()
                .enumerate()
                .map(|(i, job)| (vec![i as u32], job))
                .collect(),
        );
        let mut results: Vec<(Vec<u32>, R)> = Vec::new();
        loop {
            let next = worklist.borrow_mut().pop_front();
            let Some((path, job)) = next else { break };
            let scope = TreeScope {
                width: 1,
                path: path.clone(),
                kids: Cell::new(0),
                runner: ScopeRunner::Inline(&worklist),
            };
            let r = job(&scope);
            results.push((path, r));
        }
        results.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        results.into_iter().map(|(_, r)| r).collect()
    }

    impl Drop for WorkerPool {
        /// Close the scheduler (queued jobs still drain — workers only
        /// exit once every deque and the injector are empty) and join
        /// every worker.
        fn drop(&mut self) {
            if let Ok(mut closed) = self.shared.sleep.lock() {
                *closed = true;
            }
            self.shared.ready.notify_all();
            for handle in self.workers.drain(..) {
                // A worker can only have panicked through catch_unwind
                // gaps; surface nothing and keep dropping the rest.
                let _ = handle.join();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        fn nz(n: usize) -> NonZeroUsize {
            NonZeroUsize::new(n).unwrap()
        }

        #[test]
        fn batch_results_arrive_in_submission_order() {
            let pool = WorkerPool::new(nz(4));
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
                .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = pool.run_ordered(jobs);
            assert_eq!(out, (0..64usize).map(|i| i * 2).collect::<Vec<_>>());
        }

        #[test]
        fn pool_is_reusable_across_batches() {
            let pool = WorkerPool::new(nz(2));
            for round in 0..10u64 {
                let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8)
                    .map(|i| Box::new(move || round * 100 + i) as Box<dyn FnOnce() -> u64 + Send>)
                    .collect();
                let out = pool.run_ordered(jobs);
                assert_eq!(out, (0..8).map(|i| round * 100 + i).collect::<Vec<_>>());
            }
        }

        #[test]
        fn empty_batch_returns_immediately() {
            let pool = WorkerPool::new(nz(1));
            let out: Vec<u32> = pool.run_ordered(Vec::new());
            assert!(out.is_empty());
        }

        #[test]
        fn drop_drains_submitted_jobs_and_joins_workers() {
            let counter = Arc::new(AtomicUsize::new(0));
            {
                let pool = WorkerPool::new(nz(3));
                for _ in 0..32 {
                    let counter = Arc::clone(&counter);
                    pool.submit(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
                // Dropping here must let all 32 queued jobs finish.
            }
            assert_eq!(counter.load(Ordering::SeqCst), 32);
        }

        #[test]
        fn panicking_job_propagates_but_pool_survives() {
            let pool = WorkerPool::new(nz(2));
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 1),
                Box::new(|| panic!("job exploded")),
                Box::new(|| 3),
            ];
            let err = catch_unwind(AssertUnwindSafe(|| pool.run_ordered(jobs)))
                .expect_err("panic must propagate to the caller");
            let message = err
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("non-str payload");
            assert!(message.contains("job exploded"), "{message}");
            // The workers survived the panic: the pool still runs batches.
            let out = pool.run_ordered(vec![Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>]);
            assert_eq!(out, vec![7]);
        }

        /// The reference tree: root i spawns `i` children, each child j
        /// spawns one grandchild. Pre-order result must be
        /// root, child 0, its grandchild, child 1, its grandchild, …
        fn spawn_reference_tree(pool: Option<&WorkerPool>) -> Vec<String> {
            let roots: Vec<TreeJob<String>> = (0..4u32)
                .map(|i| {
                    Box::new(move |scope: &TreeScope<'_, String>| {
                        for j in 0..i {
                            scope.fork(move |scope: &TreeScope<'_, String>| {
                                scope.fork(move |_: &TreeScope<'_, String>| {
                                    format!("grandchild {i}.{j}.0")
                                });
                                format!("child {i}.{j}")
                            });
                        }
                        format!("root {i}")
                    }) as TreeJob<String>
                })
                .collect();
            match pool {
                Some(pool) => pool.run_tree(roots),
                None => run_tree_inline(roots),
            }
        }

        #[test]
        fn tree_results_merge_in_spawn_order_on_the_pool() {
            let pool = WorkerPool::new(nz(4));
            let got = spawn_reference_tree(Some(&pool));
            let expected = spawn_reference_tree(None);
            assert_eq!(got, expected);
            assert_eq!(expected[0], "root 0");
            assert_eq!(expected[1], "root 1");
            assert_eq!(expected[2], "child 1.0");
            assert_eq!(expected[3], "grandchild 1.0.0");
            // 4 roots + (0+1+2+3) children + as many grandchildren.
            assert_eq!(got.len(), 4 + 6 + 6);
            assert_eq!(pool.tree_tasks(), 16, "every task ran on the pool");
        }

        #[test]
        fn tree_runs_on_a_single_worker_without_deadlock() {
            let pool = WorkerPool::new(nz(1));
            assert_eq!(
                spawn_reference_tree(Some(&pool)),
                spawn_reference_tree(None)
            );
        }

        #[test]
        fn tree_is_deterministic_across_widths_and_rounds() {
            let reference = spawn_reference_tree(None);
            for threads in [2usize, 3, 8] {
                let pool = WorkerPool::new(nz(threads));
                for _ in 0..5 {
                    assert_eq!(
                        spawn_reference_tree(Some(&pool)),
                        reference,
                        "threads={threads}"
                    );
                }
            }
        }

        #[test]
        fn empty_tree_returns_immediately() {
            let pool = WorkerPool::new(nz(2));
            let out: Vec<u32> = pool.run_tree(Vec::new());
            assert!(out.is_empty());
            assert_eq!(pool.tree_tasks(), 0);
        }

        #[test]
        fn tree_scope_reports_pool_width() {
            let pool = WorkerPool::new(nz(3));
            let roots: Vec<TreeJob<usize>> =
                vec![Box::new(|scope: &TreeScope<'_, usize>| scope.width())];
            assert_eq!(pool.run_tree(roots), vec![3]);
            let roots: Vec<TreeJob<usize>> =
                vec![Box::new(|scope: &TreeScope<'_, usize>| scope.width())];
            assert_eq!(run_tree_inline(roots), vec![1]);
        }

        #[test]
        fn panicking_tree_task_propagates_but_pool_survives() {
            let pool = WorkerPool::new(nz(2));
            let roots: Vec<TreeJob<u32>> = vec![
                Box::new(|_: &TreeScope<'_, u32>| 1),
                Box::new(|scope: &TreeScope<'_, u32>| {
                    scope.fork(|_: &TreeScope<'_, u32>| panic!("tree task exploded"));
                    2
                }),
            ];
            let err = catch_unwind(AssertUnwindSafe(|| pool.run_tree(roots)))
                .expect_err("panic must propagate to the caller");
            let message = err
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("non-str payload");
            assert!(message.contains("tree task exploded"), "{message}");
            // The workers survived: the pool still runs trees and batches.
            let roots: Vec<TreeJob<u32>> = vec![Box::new(|_: &TreeScope<'_, u32>| 7)];
            assert_eq!(pool.run_tree(roots), vec![7]);
            let out = pool.run_ordered(vec![Box::new(|| 9u32) as Box<dyn FnOnce() -> u32 + Send>]);
            assert_eq!(out, vec![9]);
        }

        #[test]
        fn single_thread_pool_preserves_fifo_submission() {
            let pool = WorkerPool::new(nz(1));
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..16 {
                let log = Arc::clone(&log);
                pool.submit(move || log.lock().unwrap().push(i));
            }
            drop(pool); // joins after draining
            assert_eq!(*log.lock().unwrap(), (0..16).collect::<Vec<_>>());
        }

        /// Force a steal deterministically: the root task forks a child
        /// onto its own deque and then spins until the child has run.
        /// The root's worker is busy spinning, so the only way the child
        /// can run — and the root can ever stop spinning — is a peer
        /// stealing it. Works even on one CPU (the OS preempts the
        /// spinner); the timeout keeps a regression from hanging CI.
        #[test]
        fn fork_from_a_busy_worker_is_stolen_by_a_peer() {
            use std::sync::atomic::AtomicBool;
            use std::time::{Duration, Instant};
            let pool = WorkerPool::new(nz(2));
            assert_eq!(pool.steals(), 0);
            let ran = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&ran);
            let roots: Vec<TreeJob<u32>> = vec![Box::new(move |scope: &TreeScope<'_, u32>| {
                let flag2 = Arc::clone(&flag);
                scope.fork(move |_: &TreeScope<'_, u32>| {
                    flag2.store(true, Ordering::SeqCst);
                    1
                });
                let deadline = Instant::now() + Duration::from_secs(10);
                while !flag.load(Ordering::SeqCst) {
                    assert!(Instant::now() < deadline, "child was never stolen");
                    std::thread::yield_now();
                }
                0
            })];
            assert_eq!(pool.run_tree(roots), vec![0, 1]);
            assert!(pool.steals() > 0, "the child ran, so it was stolen");
        }

        #[test]
        fn tree_forks_raise_the_queue_depth_high_water() {
            let pool = WorkerPool::new(nz(1));
            assert_eq!(pool.max_queue_depth(), 0);
            let roots: Vec<TreeJob<u32>> = vec![Box::new(|scope: &TreeScope<'_, u32>| {
                // All 8 forks land on the running worker's deque before
                // any can be popped, so the high-water reaches 8.
                for _ in 0..8 {
                    scope.fork(|_: &TreeScope<'_, u32>| 1);
                }
                0
            })];
            assert_eq!(pool.run_tree(roots).len(), 9);
            assert!(
                pool.max_queue_depth() >= 8,
                "depth high-water {} < 8",
                pool.max_queue_depth()
            );
        }

        #[test]
        fn flat_batches_do_not_touch_the_tree_depth_high_water() {
            let pool = WorkerPool::new(nz(2));
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..64u32)
                .map(|i| Box::new(move || i) as Box<dyn FnOnce() -> u32 + Send>)
                .collect();
            let _ = pool.run_ordered(jobs);
            assert_eq!(pool.max_queue_depth(), 0);
        }

        #[test]
        fn calibration_stores_a_clamped_overhead() {
            let pool = WorkerPool::new(nz(2));
            assert_eq!(pool.dispatch_overhead_ns(), 0, "uncalibrated at birth");
            let measured = pool.calibrate_dispatch_overhead();
            assert!((1_000..=200_000).contains(&measured));
            assert_eq!(pool.dispatch_overhead_ns(), measured);
            assert_eq!(pool.tree_tasks(), 0, "calibration is not tree work");
        }

        #[test]
        fn scope_queue_depth_sees_the_workers_own_forks() {
            let pool = WorkerPool::new(nz(2));
            assert_eq!(pool.local_queue_depth(), 0, "injector empty off-pool");
            // Width 1 so no peer can steal the forks out from under the
            // depth read while the root still runs.
            let solo = WorkerPool::new(nz(1));
            let depth_inside: Vec<usize> =
                solo.run_tree(vec![Box::new(|scope: &TreeScope<'_, usize>| {
                    scope.fork(|_: &TreeScope<'_, usize>| 0);
                    scope.fork(|_: &TreeScope<'_, usize>| 0);
                    scope.queue_depth()
                }) as TreeJob<usize>]);
            assert_eq!(depth_inside[0], 2, "both forks sit on the own deque");
        }
    }
}

/// Multi-producer channels with back-pressure.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver hung up; the
    /// unsent value is returned to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel. Cloneable; `send` blocks
    /// while the channel is full.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// The receiving half of a bounded channel. Iterating consumes
    /// messages until all senders disconnect.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and every sender has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`] when no message is ready.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain connected.
        Empty,
        /// Every sender has hung up and the channel is drained.
        Disconnected,
    }

    /// Create a channel holding at most `cap` in-flight messages
    /// (`cap == 0` gives a rendezvous channel, like crossbeam).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if the receiver has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking while the channel is
        /// empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once every sender has hung up and the
        /// channel is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Receive the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is ready yet and
        /// [`TryRecvError::Disconnected`] once every sender has hung up
        /// and the channel is drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterate over messages, blocking between them, until every
        /// sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_flow_in_order() {
            let (tx, rx) = bounded::<u32>(4);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.into_iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = bounded::<u32>(2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(5).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded::<u32>(8);
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || tx.send(1).unwrap());
            let b = std::thread::spawn(move || tx2.send(2).unwrap());
            a.join().unwrap();
            b.join().unwrap();
            let mut got: Vec<u32> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
