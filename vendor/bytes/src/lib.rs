//! Offline stand-in for the [`bytes`](https://docs.rs/bytes/1) crate.
//!
//! Implements the subset the NetFlow v5 codec uses: [`Bytes`] (cheaply
//! cloneable immutable buffer), [`BytesMut`] (append-only builder), and
//! the big-endian cursor methods of [`Buf`]/[`BufMut`]. Semantics match
//! the real crate for this subset — including panics on under-full
//! reads — so swapping the real `bytes` in is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-endian reads from a buffer.
///
/// All `get_*` methods panic when fewer than the required bytes
/// remain, exactly like the real crate; length-check with
/// [`remaining`](Self::remaining) first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential big-endian writes into a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 15);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "index")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32();
    }
}
