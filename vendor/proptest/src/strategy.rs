//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! [`any`], [`Just`] and [`Strategy::prop_map`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value-tree/shrinking layer:
/// `generate` draws one concrete value per test case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always generates a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain uniform strategy, i.e. valid for [`any`].
pub trait Arbitrary: Sized {
    /// Draw one uniform value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform over the whole domain of `T` (`[0, 1)` for floats).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let strat = (1u32..10, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let (n, f) = strat.generate(&mut rng);
            assert!(n % 2 == 0 && (2..20).contains(&n));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn any_and_just_generate() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: bool = any::<bool>().generate(&mut rng);
        let _: u64 = any::<u64>().generate(&mut rng);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
