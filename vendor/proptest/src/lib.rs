//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1)
//! crate.
//!
//! This is a real randomized property-test runner — strategies generate
//! fresh random inputs every case — covering the API surface the
//! workspace's property suites use: the [`proptest!`] macro (with
//! `#![proptest_config]`), range/tuple/[`any`](strategy::any)
//! strategies, [`prop_map`](strategy::Strategy::prop_map),
//! [`collection`] strategies, [`sample::select`]
//! and the `prop_assert*` macros. Two deliberate simplifications versus
//! the real crate:
//!
//! 1. **No shrinking.** A failing case panics with the generated values
//!    via the assertion message, the case index, and the seed; re-runs
//!    are deterministic (see below) so failures reproduce exactly.
//! 2. **Deterministic seeding.** Each test's RNG is seeded from a hash
//!    of its full module path (overridable with `PROPTEST_SEED`), so CI
//!    runs are reproducible. Set `PROPTEST_CASES` to widen exploration.
//!
//! Swapping the real proptest in is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod sample;
pub mod strategy;

/// Per-test configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like the real proptest; `PROPTEST_CASES` overrides.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to derive a stable per-test seed from its module path.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drive `body` through `cases` random cases. Called by the generated
/// test fns; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases(test_path: &str, cases: u32, mut body: impl FnMut(&mut StdRng)) {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(test_path));
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest: property {test_path} failed at case {case}/{cases} (seed {seed}); \
                 rerun with PROPTEST_SEED={seed} to reproduce"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Everything a property-test module needs in one import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against many random
/// instantiations of its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config.cases,
                |rng| {
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategy, rng);
                    $body
                },
            );
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Property-scoped `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property-scoped `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property-scoped `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
