//! Sampling strategies over fixed collections.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Uniformly pick one of `items` (cloned) per generated value.
///
/// # Panics
///
/// Panics if `items` is empty.
#[must_use]
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

/// Strategy produced by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.items[rng.random_range(0..self.items.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn select_covers_all_items() {
        let strat = select(vec![80u16, 25, 445]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen, std::collections::BTreeSet::from([80, 25, 445]));
    }
}
