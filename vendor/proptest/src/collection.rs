//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size window for generated collections. Built from a
/// plain `usize` (exact size), `a..b`, or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut StdRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s of values from `element`, sized within `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s: draws a size within `size`, then that many
/// elements. Duplicates collapse, so (as in the real proptest with a
/// narrow element domain) the set may come out smaller than drawn.
#[must_use]
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s: like [`btree_set`], over `(key, value)`
/// pairs; duplicate keys collapse (last value wins).
#[must_use]
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Strategy produced by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_sizes_cover_the_window() {
        let strat = vec(0u8..=255, 2..5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = BTreeSet::new();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen.insert(v.len());
        }
        assert_eq!(seen, BTreeSet::from([2, 3, 4]));
    }

    #[test]
    fn exact_size_vec() {
        let strat = vec(0u64..10, 32);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(strat.generate(&mut rng).len(), 32);
    }

    #[test]
    fn map_always_meets_minimum_of_one() {
        let strat = btree_map(0usize..7, 0u64..4, 1..=7);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let m = strat.generate(&mut rng);
            assert!((1..=7).contains(&m.len()));
        }
    }
}
