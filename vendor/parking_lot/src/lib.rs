//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot/0.12).
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape:
//! [`Mutex::lock`] returns the guard directly (no `Result`), recovering
//! the data from a poisoned std mutex the way parking_lot (which has no
//! poisoning) would. Not a performance claim — just API compatibility so
//! the real crate can be swapped in via `Cargo.toml` alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a panic in another
    /// critical section leaves the data accessible, matching
    /// parking_lot's no-poisoning semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_mutates() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable, data still readable.
        assert_eq!(*m.lock(), 0);
    }
}
