//! Plugging a different detector family into the extraction pipeline —
//! the paper's Table I point: "the presented anomaly extraction approach
//! is generic and can be used with different anomaly detectors that
//! provide meta-data about identified anomalies."
//!
//! Here a sample-**entropy** detector (Wagner & Plattner-style, Table I
//! row "entropy detectors") watches the destination-port distribution. On
//! alarm, its top-moving values become the meta-data that drives the same
//! union pre-filter + maximal item-set mining as the histogram bank.
//!
//! ```sh
//! cargo run --release --example custom_detector
//! ```

use anomex::core::{render_report, Engine, ExtractRequest};
use anomex::detector::EntropyDetector;
use anomex::prelude::*;

fn main() {
    let scenario = Scenario::small(7);

    // One entropy detector on destination ports (scans spray ports and
    // raise entropy; floods concentrate them and drop it — the detector
    // thresholds |ΔH| two-sided).
    let mut detector = EntropyDetector::new(FlowFeature::DstPort, 3.0, 10);

    println!(
        "entropy-driven extraction over {} intervals\n",
        scenario.interval_count()
    );
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        let obs = detector.observe(&interval.flows);

        if i % 8 == 0 || obs.alarm {
            println!(
                "interval {i:>2}: H(dstPort) = {:.3} bits{}{}",
                obs.entropy,
                obs.first_diff
                    .map_or(String::new(), |d| format!(" (Δ {d:+.3})")),
                if obs.alarm { "  << ALARM" } else { "" }
            );
        }
        if !obs.alarm {
            continue;
        }

        // The entropy detector's top-moving values are the meta-data; the
        // rest of the pipeline is unchanged.
        let mut metadata = MetaData::new();
        metadata.insert_all(FlowFeature::DstPort, obs.values.iter().copied());
        let extraction = Engine::extract(
            &ExtractRequest::new(&interval.flows, &metadata, 800)
                .interval(i)
                .miner(MinerKind::FpGrowth),
        );
        println!("{}", render_report(&extraction));
        let truth: Vec<String> = scenario
            .events_in(i)
            .iter()
            .map(|e| format!("{} ({})", e.id, e.class()))
            .collect();
        println!("ground truth: {}\n", truth.join(", "));
    }
}
