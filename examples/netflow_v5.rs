//! NetFlow v5 wire-format round trip: what the bytes on the wire look
//! like, how sequence gaps (lost datagrams) are detected, and how decoded
//! flows feed the extraction pipeline.
//!
//! ```sh
//! cargo run --release --example netflow_v5
//! ```

use anomex::netflow::v5::{decode_datagram, V5Collector, V5Exporter, V5_HEADER_LEN, V5_RECORD_LEN};
use anomex::prelude::*;

fn main() {
    // Some flows to export: a short web session and a DNS lookup.
    let flows = vec![
        FlowRecord::new(
            1_000,
            "192.0.2.10".parse().unwrap(),
            "198.51.100.80".parse().unwrap(),
            51_234,
            80,
            Protocol::Tcp,
        )
        .with_volume(12, 9_000)
        .with_end(1_420)
        .with_flags(TcpFlags(TcpFlags::SYN | TcpFlags::ACK | TcpFlags::FIN)),
        FlowRecord::new(
            1_100,
            "192.0.2.10".parse().unwrap(),
            "198.51.100.53".parse().unwrap(),
            53_123,
            53,
            Protocol::Udp,
        )
        .with_volume(1, 64),
    ];

    // --- Export ---
    let mut exporter = V5Exporter::new();
    let datagrams = exporter.export(&flows);
    println!(
        "exported {} flows in {} datagram(s)",
        flows.len(),
        datagrams.len()
    );
    let wire = &datagrams[0];
    println!(
        "datagram: {} bytes = {}-byte header + {} x {}-byte records",
        wire.len(),
        V5_HEADER_LEN,
        flows.len(),
        V5_RECORD_LEN
    );
    print!("first 24 bytes (header):");
    for (i, b) in wire.iter().take(V5_HEADER_LEN).enumerate() {
        if i % 8 == 0 {
            print!("\n  ");
        }
        print!("{b:02x} ");
    }
    println!("\n");

    // --- Decode ---
    let dgram = decode_datagram(wire).expect("well-formed datagram");
    println!("decoded header: {:?}", dgram.header);
    for f in &dgram.flows {
        println!("decoded flow:   {f}");
    }
    assert_eq!(dgram.flows, flows, "lossless round trip");

    // --- Loss detection via sequence numbers ---
    let many: Vec<FlowRecord> = (0..90u32)
        .map(|i| {
            FlowRecord::new(
                u64::from(i) * 100,
                "192.0.2.10".parse().unwrap(),
                "198.51.100.80".parse().unwrap(),
                51_000 + i as u16,
                80,
                Protocol::Tcp,
            )
        })
        .collect();
    let mut exporter = V5Exporter::new();
    let dgrams = exporter.export(&many); // 3 datagrams of 30
    let mut collector = V5Collector::new();
    collector.ingest(&dgrams[0]).unwrap();
    // dgrams[1] is lost in transit...
    collector.ingest(&dgrams[2]).unwrap();
    println!(
        "\nloss detection: ingested 2 of 3 datagrams -> collector inferred {} lost flows",
        collector.lost_flows()
    );

    // --- Malformed input is rejected, not panicked on ---
    let err = decode_datagram(&wire[..10]).unwrap_err();
    println!("truncated datagram -> {err}");
    let mut wrong_version = wire.to_vec();
    wrong_version[1] = 9;
    let err = decode_datagram(&wrong_version).unwrap_err();
    println!("wrong version     -> {err}");

    // --- Straight into the pipeline ---
    let mut metadata = MetaData::new();
    metadata.insert(FlowFeature::DstPort, 80);
    let suspicious: Vec<FlowRecord> = collector
        .into_flows()
        .into_iter()
        .filter(|f| metadata.matches_any(f))
        .collect();
    println!(
        "\npre-filtering the collected flows against {{dstPort=80}} keeps {} flows",
        suspicious.len()
    );
}
