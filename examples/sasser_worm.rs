//! Union vs. intersection pre-filtering on a multi-stage anomaly — the
//! paper's Sasser-worm argument (§II-A).
//!
//! Sasser propagates in stages: (1) SYN scans on port 445 to find victims,
//! (2) connections to a backdoor on port 9996, (3) download of the 16-kB
//! worm executable. Detectors annotate the alarm with meta-data from
//! *different stages* — flags that appear in *different flows*. A filter
//! keeping flows that match ALL meta-data (intersection) finds nothing; the
//! paper's union filter recovers every stage.
//!
//! ```sh
//! cargo run --release --example sasser_worm
//! ```

use std::net::Ipv4Addr;

use anomex::core::{render_report, Engine, ExtractRequest, PrefilterMode};
use anomex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build the three-stage Sasser footprint plus web background.
fn sasser_trace() -> Vec<FlowRecord> {
    let mut rng = StdRng::seed_from_u64(4);
    let infected = Ipv4Addr::new(10, 5, 5, 5);
    let mut flows = Vec::new();

    // Stage 1: SYN scan on 445 — 4 000 one-packet probes.
    for i in 0..4000u32 {
        flows.push(
            FlowRecord::new(
                u64::from(i) * 10,
                infected,
                Ipv4Addr::from(0x0a10_0000 + i),
                rng.random_range(1024..=u16::MAX),
                445,
                Protocol::Tcp,
            )
            .with_volume(1, 40)
            .with_flags(TcpFlags::syn_only()),
        );
    }
    // Stage 2: backdoor connections on port 9996 to the responsive hosts.
    for i in 0..1500u32 {
        flows.push(
            FlowRecord::new(
                40_000 + u64::from(i) * 20,
                infected,
                Ipv4Addr::from(0x0a10_0000 + i * 2),
                rng.random_range(1024..=u16::MAX),
                9996,
                Protocol::Tcp,
            )
            .with_volume(6, 480),
        );
    }
    // Stage 3: 16-kB executable download — a fixed flow size (12 packets).
    for i in 0..1500u32 {
        flows.push(
            FlowRecord::new(
                70_000 + u64::from(i) * 20,
                Ipv4Addr::from(0x0a10_0000 + i * 2),
                infected,
                rng.random_range(1024..=u16::MAX),
                5554,
                Protocol::Tcp,
            )
            .with_volume(12, 16_384),
        );
    }
    // Benign web background.
    for i in 0..20_000u32 {
        flows.push(
            FlowRecord::new(
                u64::from(i) * 5,
                Ipv4Addr::from(0x0a00_0000 + (i % 4096)),
                Ipv4Addr::from(0x5000_0000 + i),
                rng.random_range(1024..=u16::MAX),
                80,
                Protocol::Tcp,
            )
            .with_volume(rng.random_range(2..40), rng.random_range(100..50_000)),
        );
    }
    flows.sort_by_key(|f| f.start_ms);
    flows
}

fn main() {
    let flows = sasser_trace();

    // The alarm's meta-data names one artifact of each stage — port 445
    // (scan), port 9996 (backdoor), and the 12-packet download size —
    // exactly the flow-disjoint situation §II-A describes.
    let mut metadata = MetaData::new();
    metadata.insert(FlowFeature::DstPort, 445);
    metadata.insert(FlowFeature::DstPort, 9996);
    metadata.insert(FlowFeature::Packets, 12);

    println!("trace: {} flows; meta-data:\n{metadata}\n", flows.len());

    for mode in [PrefilterMode::Intersection, PrefilterMode::Union] {
        let extraction =
            Engine::extract(&ExtractRequest::new(&flows, &metadata, 1000).prefilter(mode));
        println!("=== {mode:?} pre-filter ===");
        println!(
            "suspicious flows: {} / {}",
            extraction.suspicious_flows, extraction.total_flows
        );
        if extraction.itemsets.is_empty() {
            println!("-> NOTHING extracted: the anomaly is missed entirely\n");
        } else {
            println!("{}", render_report(&extraction));
        }
    }

    println!(
        "The intersection is empty because no single flow carries port 445 AND\n\
         port 9996 AND 12 packets — the union recovers all three worm stages\n\
         (paper §II-A; DoWitcher comparison in §IV)."
    );
}
