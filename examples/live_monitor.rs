//! Online operation (paper §II: "the anomaly detector triggers the
//! anomaly extraction process upon detecting an anomaly"), wired the way a
//! real deployment would be:
//!
//! ```text
//! [exporter thread]  --NetFlow v5 datagrams-->  [collector/extractor thread]  --reports-->  [main]
//! ```
//!
//! The exporter thread serializes a synthetic workload into real NetFlow
//! v5 datagrams (30 records each). The collector thread decodes them,
//! reassembles 1-minute measurement intervals on the fly, and runs the
//! detection + extraction pipeline. Extraction reports stream back to the
//! main thread as they happen. Everything is plain threads and
//! crossbeam channels — the pipeline is CPU-bound, so no async runtime is
//! involved.
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use std::thread;

use anomex::core::render_report;
use anomex::netflow::v5::{V5Collector, V5Exporter};
use anomex::prelude::*;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

/// Pipeline statistics shared across threads.
#[derive(Debug, Default)]
struct Stats {
    datagrams: u64,
    flows: u64,
    alarms: u64,
}

fn exporter_thread(scenario: Scenario, tx: Sender<bytes::Bytes>, stats: &Mutex<Stats>) {
    let mut exporter = V5Exporter::new();
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        for datagram in exporter.export(&interval.flows) {
            {
                let mut s = stats.lock();
                s.datagrams += 1;
            }
            if tx.send(datagram).is_err() {
                return; // collector hung up
            }
        }
    }
}

fn collector_thread(
    rx: Receiver<bytes::Bytes>,
    reports: Sender<String>,
    interval_ms: u64,
    stats: &Mutex<Stats>,
) {
    let config = ExtractionConfig {
        interval_ms,
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        ..ExtractionConfig::default()
    };
    let mut pipeline = AnomalyExtractor::try_new(config).unwrap();
    let mut assembler = IntervalAssembler::new(0, interval_ms);

    let process = |flows: Vec<FlowRecord>,
                   pipeline: &mut AnomalyExtractor,
                   stats: &Mutex<Stats>|
     -> Option<String> {
        let outcome = pipeline.process_interval(&flows);
        if outcome.observation.alarm {
            stats.lock().alarms += 1;
        }
        outcome.extraction.map(|e| render_report(&e))
    };

    let mut collector = V5Collector::new();
    for datagram in rx {
        collector
            .ingest(&datagram)
            .expect("exporter sends well-formed datagrams");
        let flows = std::mem::take(&mut collector).into_flows();
        collector = V5Collector::new();
        stats.lock().flows += flows.len() as u64;
        for flow in flows {
            for closed in assembler.push(flow) {
                if let Some(report) = process(closed.flows, &mut pipeline, stats) {
                    if reports.send(report).is_err() {
                        return;
                    }
                }
            }
        }
    }
    // End of stream: flush the last interval.
    if let Some(closed) = assembler.flush() {
        if let Some(report) = process(closed.flows, &mut pipeline, stats) {
            let _ = reports.send(report);
        }
    }
}

fn main() {
    let scenario = Scenario::small(7);
    let interval_ms = scenario.interval_ms();
    let stats = Box::leak(Box::new(Mutex::new(Stats::default())));

    // Bounded channels give natural backpressure: the exporter cannot run
    // unboundedly ahead of the collector.
    let (dgram_tx, dgram_rx) = bounded::<bytes::Bytes>(1024);
    let (report_tx, report_rx) = bounded::<String>(16);

    let exporter = thread::spawn({
        let stats = &*stats;
        move || exporter_thread(scenario, dgram_tx, stats)
    });
    let collector = thread::spawn({
        let stats = &*stats;
        move || collector_thread(dgram_rx, report_tx, interval_ms, stats)
    });

    // Reports stream in while the pipeline is still running.
    for report in report_rx {
        println!("{report}");
    }

    exporter.join().expect("exporter thread panicked");
    collector.join().expect("collector thread panicked");

    let s = stats.lock();
    println!(
        "stream complete: {} NetFlow v5 datagrams, {} flows, {} interval alarms",
        s.datagrams, s.flows, s.alarms
    );
}
