//! The paper's §II-B worked example (Table II): extract a port-7000
//! flooding attack from 350 k flows that also contain the three most
//! popular destination ports, added deliberately to provoke false-positive
//! item-sets.
//!
//! ```sh
//! cargo run --release --example ddos_port7000            # paper scale (350k flows)
//! cargo run --release --example ddos_port7000 -- 0.1     # 10% scale
//! ```

use anomex::core::{render_report, Engine, ExtractRequest};
use anomex::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).map_or(1.0, |s| {
        s.parse().expect("scale must be a number, e.g. 0.1")
    });

    // The Table II input set: 53 467 port-7000 flood flows (the real
    // anomaly at host E) + 252 069 port-80 flows (proxies A, B, C among
    // them) + 22 667 port-9022 backscatter + 22 659 port-25 mail flows.
    let w = table2_workload(2009, scale);
    println!(
        "input: {} flows, minimum support {}\n",
        w.flows.len(),
        w.min_support
    );

    // In the paper's example, destination port 7000 was the only flagged
    // feature value; the popular ports are forced through the pre-filter
    // to imitate collisions.
    let mut metadata = MetaData::new();
    for port in [w.flood_port, 80, 9022, 25] {
        metadata.insert(FlowFeature::DstPort, u64::from(port));
    }

    let extraction = Engine::extract(&ExtractRequest::new(&w.flows, &metadata, w.min_support));
    println!("{}", render_report(&extraction));

    // The paper's headline observations about Table II:
    let port7000 = extraction
        .itemsets
        .iter()
        .filter(|s| s.to_string().contains("dstPort=7000"))
        .count();
    println!("item-sets pinning dstPort=7000 (paper: 3): {port7000}");
    println!(
        "total maximal item-sets (paper: 15):          {}",
        extraction.itemsets.len()
    );
    let victim = extraction
        .itemsets
        .iter()
        .any(|s| s.to_string().contains(&format!("dstIP={}", w.victim)));
    println!("victim host E pinned:                         {victim}");
}
