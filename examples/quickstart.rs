//! Quickstart: run the full anomaly-extraction pipeline on a small
//! synthetic workload and print the extraction reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use anomex::core::render_report;
use anomex::prelude::*;

fn main() {
    // A 40-interval workload with three planted anomalies (a flood on
    // port 7000, a scan on port 445, and backscatter on port 9022) and a
    // realistic backbone background.
    let scenario = Scenario::small(7);

    // The paper's pipeline configuration (Table III), adapted to the
    // workload's 1-minute intervals and ~4k-flow volume: k = 1024 bins,
    // n = l = 3 clones, α = 3, union pre-filter, maximal Apriori.
    let config = ExtractionConfig {
        interval_ms: scenario.interval_ms(),
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        ..ExtractionConfig::default()
    };

    let mut pipeline = AnomalyExtractor::try_new(config).unwrap();

    println!("processing {} intervals...\n", scenario.interval_count());
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        let outcome = pipeline.process_interval(&interval.flows);
        if let Some(extraction) = outcome.extraction {
            println!("{}", render_report(&extraction));
            // Ground truth check (only possible on synthetic data):
            let truth: Vec<String> = scenario
                .events_in(i)
                .iter()
                .map(|e| format!("{} ({})", e.id, e.class()))
                .collect();
            println!("ground truth for interval {i}: {}\n", truth.join(", "));
        }
    }

    println!(
        "detector memory footprint: {:.1} kB (paper §III-E reports 472 kB for 5×3×1024 bins)",
        pipeline.bank().memory_bytes() as f64 / 1024.0
    );
}
