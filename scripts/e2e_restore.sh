#!/usr/bin/env bash
# End-to-end durability smoke for checkpoint/restore, outside the test
# suite: generate a NetFlow v5 workload, stream it uninterrupted, then
# stream it again with periodic checkpoints but killed mid-run
# (`--stop-after` takes a final checkpoint and exits without finishing),
# resume from the checkpoint with `--resume`, and require the
# concatenated interrupted output to be byte-identical to the
# uninterrupted run — the kill-and-resume contract, at the binary level.
#
# Usage: scripts/e2e_restore.sh [path-to-anomex-binary]
# Builds the release binary when no path is given.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-}"
if [[ -z "$bin" ]]; then
    cargo build --release -p anomex-cli
    bin=target/release/anomex
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# One link of the small scenario: 25 intervals cover the planted flood
# at interval 20, so the kill at interval 12 lands after training but
# before the anomaly — the resumed process must detect it from restored
# baselines alone.
"$bin" generate --out "$workdir/link.nfv5" --seed 11 --intervals 25

opts=(--interval-min 1 --training 10 --support 800 --threads 2)

# Reference: the never-killed run.
"$bin" stream --in "$workdir/link.nfv5" "${opts[@]}" > "$workdir/full.out"

# Interrupted run, part 1: checkpoint every interval, die after 12.
"$bin" stream --in "$workdir/link.nfv5" "${opts[@]}" \
    --checkpoint-dir "$workdir/ckpt" --checkpoint-every 1 --stop-after 12 \
    > "$workdir/part1.out"

if [[ ! -f "$workdir/ckpt/stream.ckpt" ]]; then
    echo "e2e-restore: --stop-after left no checkpoint behind" >&2
    exit 1
fi

# Interrupted run, part 2: resume from the checkpoint, finish the trace.
"$bin" stream --in "$workdir/link.nfv5" "${opts[@]}" \
    --checkpoint-dir "$workdir/ckpt" --resume \
    > "$workdir/part2.out"

# Keep only the per-interval reports: drop each run's own trailer lines.
filter() {
    grep -vE '^(fan-in:|source src[0-9]+ \(|per-interval latency:|streamed |processed )' "$1"
}
filter "$workdir/full.out" > "$workdir/full.reports"
cat "$workdir/part1.out" "$workdir/part2.out" > "$workdir/resumed.out"
filter "$workdir/resumed.out" > "$workdir/resumed.reports"

if ! grep -q '^Anomaly extraction report' "$workdir/full.reports"; then
    echo "e2e-restore: no extraction reports produced — the smoke test is vacuous" >&2
    exit 1
fi
if ! grep -q 'interval' "$workdir/part2.out"; then
    echo "e2e-restore: the resumed run produced no intervals — nothing was resumed" >&2
    exit 1
fi

if ! diff -u "$workdir/full.reports" "$workdir/resumed.reports"; then
    echo "e2e-restore: kill-and-resume diverged from the uninterrupted run" >&2
    exit 1
fi

reports=$(grep -c '^Anomaly extraction report' "$workdir/resumed.reports")
echo "e2e-restore: OK — kill-and-resume byte-identical to the uninterrupted run ($reports extraction report(s))"

# `--resume` with no checkpoint present is a cold start: the run must
# complete and match the reference exactly.
"$bin" stream --in "$workdir/link.nfv5" "${opts[@]}" \
    --checkpoint-dir "$workdir/cold" --resume \
    > "$workdir/cold.out"
filter "$workdir/cold.out" > "$workdir/cold.reports"
if ! diff -u "$workdir/full.reports" "$workdir/cold.reports"; then
    echo "e2e-restore: cold start with --resume diverged from a plain run" >&2
    exit 1
fi
echo "e2e-restore: OK — --resume with an empty checkpoint dir is a clean cold start"
