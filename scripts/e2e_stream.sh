#!/usr/bin/env bash
# End-to-end determinism smoke for the full streaming path, outside the
# proptest suite: generate a two-source NetFlow v5 workload, fan both
# traces into `anomex stream` (the watermark merge engine), run the same
# traces through batch `anomex extract` (per-interval concatenation in
# file order), and require the two report streams to be byte-identical.
#
# Usage: scripts/e2e_stream.sh [path-to-anomex-binary]
# Builds the release binary when no path is given.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-}"
if [[ -z "$bin" ]]; then
    cargo build --release -p anomex-cli
    bin=target/release/anomex
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Two links of the small scenario: link 0 carries the anomalies at full
# rate, link 1 runs at a lower rate with a 437 ms clock skew. 25
# intervals cover the planted flood at interval 20.
"$bin" generate --sources 2 --out "$workdir/link0.nfv5" --out "$workdir/link1.nfv5" \
    --seed 11 --intervals 25

opts=(--interval-min 1 --training 10 --support 800 --threads 2)

"$bin" stream --in "$workdir/link0.nfv5" --in "$workdir/link1.nfv5" "${opts[@]}" \
    > "$workdir/stream.out"
"$bin" extract --in "$workdir/link0.nfv5" --in "$workdir/link1.nfv5" "${opts[@]}" \
    > "$workdir/extract.out"

# Keep only the extraction reports: drop each command's own trailer
# lines (stream: fan-in/source/latency; extract: processed count) —
# everything else must match byte for byte.
filter() {
    grep -vE '^(fan-in:|source src[0-9]+ \(|per-interval latency:|streamed |processed )' "$1"
}
filter "$workdir/stream.out" > "$workdir/stream.reports"
filter "$workdir/extract.out" > "$workdir/extract.reports"

if ! grep -q '^Anomaly extraction report' "$workdir/stream.reports"; then
    echo "e2e-stream: no extraction reports produced — the smoke test is vacuous" >&2
    exit 1
fi

if ! diff -u "$workdir/extract.reports" "$workdir/stream.reports"; then
    echo "e2e-stream: streaming fan-in diverged from batch extraction" >&2
    exit 1
fi

reports=$(grep -c '^Anomaly extraction report' "$workdir/stream.reports")
echo "e2e-stream: OK — $reports extraction report(s) bit-identical across stream fan-in and batch extract"

# Second pass with the association-rule layer on: the ranked rule
# section and the per-source rule merge must also match byte for byte
# between the streaming fan-in and the batch path.
"$bin" stream --in "$workdir/link0.nfv5" --in "$workdir/link1.nfv5" "${opts[@]}" --rules \
    > "$workdir/stream-rules.out"
"$bin" extract --in "$workdir/link0.nfv5" --in "$workdir/link1.nfv5" "${opts[@]}" --rules \
    > "$workdir/extract-rules.out"
filter "$workdir/stream-rules.out" > "$workdir/stream-rules.reports"
filter "$workdir/extract-rules.out" > "$workdir/extract-rules.reports"

if ! grep -q '^association rules' "$workdir/stream-rules.reports"; then
    echo "e2e-stream: --rules produced no rule sections — the rule pass is vacuous" >&2
    exit 1
fi
if ! grep -q '^Per-source rule merge' "$workdir/stream-rules.reports"; then
    echo "e2e-stream: two-source run produced no per-source rule merge" >&2
    exit 1
fi

if ! diff -u "$workdir/extract-rules.reports" "$workdir/stream-rules.reports"; then
    echo "e2e-stream: streaming rule reports diverged from batch extraction" >&2
    exit 1
fi

rule_sections=$(grep -c '^association rules' "$workdir/stream-rules.reports")
echo "e2e-stream: OK — rule reports ($rule_sections section(s)) bit-identical across stream fan-in and batch extract"
