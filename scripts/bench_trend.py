#!/usr/bin/env python3
"""Perf-trajectory gate for the extraction engines.

Reads the BENCH_sharded.json and BENCH_streaming.json that
`overhead_report` just emitted and compares them against the committed
baseline in ci/bench-baseline.json:

- **sharded overhead** — the ratio of the k-shard wall time to the
  1-shard (inline) wall time regresses when it exceeds the baseline
  ratio by more than 10% (relative), plus a small absolute slack for
  timer noise on fast rows;
- **streaming latency** — the per-interval p95 extraction latency of the
  streaming replay regresses when it exceeds the baseline by more than
  15% (relative), plus an absolute slack for scheduler noise;
- **low-support mining** — BENCH_mining.json's sequential-vs-pool rows
  (task-parallel candidate generation / conditional mining) are reported
  informationally, never gated: no CI-recorded baseline exists for them
  yet, and on a 1-CPU runner the pool can only add overhead.

Key skew between the report and the baseline is tolerated in both
directions: a shard count (or latency percentile) present on one side
only is reported as a warning, never a failure, so adding a new
benchmark does not break old baselines and trimming a baseline does not
break new reports.

A trend table is printed to stdout and, when the GITHUB_STEP_SUMMARY
environment variable points at a writable file (as it does in GitHub
Actions), appended there as a Markdown job summary.

Exit status: 0 when every gated metric is within budget, 1 otherwise.
Usage: scripts/bench_trend.py [BENCH_sharded.json [ci/bench-baseline.json
                               [BENCH_streaming.json [BENCH_mining.json]]]]
"""

import json
import os
import sys

SHARDED_RELATIVE_TOLERANCE = 0.10   # the ">10% vs baseline" gate
SHARDED_ABSOLUTE_SLACK = 0.02       # timer noise on sub-millisecond rows
STREAMING_RELATIVE_TOLERANCE = 0.15  # the ">15% vs baseline" gate
STREAMING_ABSOLUTE_SLACK_US = 2000   # scheduler noise on short intervals


def warn(message):
    print(f"warning: {message}")


def overhead_ratios(report):
    """Map shard count -> wall-time ratio vs the 1-shard row."""
    rows = {r["shards"]: r["millis"] for r in report["results"]}
    if 1 not in rows or rows[1] <= 0:
        raise SystemExit("bench report has no usable 1-shard baseline row")
    return {shards: millis / rows[1] for shards, millis in rows.items()}


def gate_sharded(bench_path, baseline, rows):
    """Gate sharded overhead ratios (appending to `rows`); returns failures."""
    try:
        with open(bench_path) as f:
            current = overhead_ratios(json.load(f))
    except FileNotFoundError:
        return [f"sharded report {bench_path} is missing"]

    base = {int(k): v for k, v in baseline.get("sharded_overhead_ratio", {}).items()}
    if not base:
        warn("baseline has no sharded_overhead_ratio section; skipping gate")
        return []

    failures = []
    for shards in sorted(base):
        if shards not in current:
            warn(f"shards={shards} in baseline but not in {bench_path}; skipping")
            continue
        ratio = current[shards]
        budget = base[shards] * (1 + SHARDED_RELATIVE_TOLERANCE) + SHARDED_ABSOLUTE_SLACK
        verdict = "OK" if ratio <= budget else "REGRESSION"
        print(
            f"shards={shards}: overhead ratio {ratio:.3f} "
            f"(baseline {base[shards]:.3f}, budget {budget:.3f}) {verdict}"
        )
        rows.append(
            (f"sharded overhead x{shards}", f"{base[shards]:.3f}",
             f"{ratio:.3f}", f"{budget:.3f}", verdict)
        )
        if ratio > budget:
            failures.append(f"shards={shards}: {ratio:.3f} exceeds budget {budget:.3f}")
    for shards in sorted(set(current) - set(base)):
        warn(f"shards={shards} in {bench_path} but not in baseline; not gated")
    return failures


def gate_streaming(bench_path, baseline, rows):
    """Gate streaming p95 latency (appending to `rows`); returns failures."""
    base = baseline.get("streaming_latency_micros")
    if not base:
        warn("baseline has no streaming_latency_micros section; skipping gate")
        return []
    try:
        with open(bench_path) as f:
            current = json.load(f).get("latency_micros", {})
    except FileNotFoundError:
        return [f"streaming report {bench_path} is missing"]

    failures = []
    for percentile in sorted(base):
        if percentile not in current:
            warn(f"latency {percentile} in baseline but not in {bench_path}; skipping")
            continue
        gated = percentile == "p95"
        value = current[percentile]
        budget = base[percentile] * (1 + STREAMING_RELATIVE_TOLERANCE) \
            + STREAMING_ABSOLUTE_SLACK_US
        verdict = "OK" if value <= budget else "REGRESSION"
        if not gated:
            verdict = "info"
        print(
            f"streaming {percentile}: {value} µs "
            f"(baseline {base[percentile]} µs, budget {budget:.0f} µs) {verdict}"
        )
        rows.append(
            (f"streaming latency {percentile}", f"{base[percentile]} µs",
             f"{value} µs", f"{budget:.0f} µs", verdict)
        )
        if gated and value > budget:
            failures.append(
                f"streaming {percentile}: {value} µs exceeds budget {budget:.0f} µs"
            )
    for percentile in sorted(set(current) - set(base)):
        warn(f"latency {percentile} in {bench_path} but not in baseline; not gated")
    return failures


def report_mining(bench_path, rows):
    """Report low-support mining sequential-vs-pool rows (informational,
    never gated: no CI-recorded baseline exists for this bench yet)."""
    try:
        with open(bench_path) as f:
            report = json.load(f)
    except FileNotFoundError:
        warn(f"mining report {bench_path} is missing; skipping (informational)")
        return
    tasks_total = 0
    for r in report.get("results", []):
        seq, pool = r["sequential_millis"], r["pool_millis"]
        ratio = pool / seq if seq > 0 else 1.0
        tasks_total += r.get("pool_tasks", 0)
        print(
            f"mining s={r['support']} {r['miner']}: seq {seq:.1f} ms, "
            f"pool {pool:.1f} ms ({ratio:.2f}x), {r.get('pool_tasks', 0)} tasks info"
        )
        rows.append(
            (f"mining s={r['support']} {r['miner']} pool/seq", "-",
             f"{ratio:.2f}x", "-", "info")
        )
    workers = report.get("pool_workers", 0)
    if workers > 1 and tasks_total <= 1:
        # Informational red flag, not a gate: the task-parallel search
        # phases should visibly dispatch on any multi-width pool.
        warn(f"pool of {workers} workers dispatched only {tasks_total} tree task(s)")


def write_step_summary(rows):
    """Append the trend table as Markdown to the GitHub job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not rows:
        return
    lines = [
        "### Perf trend vs committed baseline",
        "",
        "| metric | baseline | current | budget | verdict |",
        "|---|---|---|---|---|",
    ]
    for metric, base, current, budget, verdict in rows:
        icon = {"OK": "✅", "REGRESSION": "❌"}.get(verdict, "ℹ️")
        lines.append(f"| {metric} | {base} | {current} | {budget} | {icon} {verdict} |")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        warn(f"cannot write job summary {path}: {e}")


def main():
    sharded_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sharded.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "ci/bench-baseline.json"
    streaming_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_streaming.json"
    mining_path = sys.argv[4] if len(sys.argv) > 4 else "BENCH_mining.json"
    with open(base_path) as f:
        baseline = json.load(f)

    rows = []
    failures = gate_sharded(sharded_path, baseline, rows)
    failures += gate_streaming(streaming_path, baseline, rows)
    report_mining(mining_path, rows)
    write_step_summary(rows)

    if failures:
        print("perf regression vs committed baseline:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("every gated metric within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
