#!/usr/bin/env python3
"""Perf-trajectory gate for the sharded extraction engine.

Reads the BENCH_sharded.json that `overhead_report` just emitted and
compares its sharded-overhead column — the ratio of the k-shard wall
time to the 1-shard (inline) wall time — against the committed baseline
in ci/bench-baseline.json. A ratio is a regression when it exceeds the
baseline ratio by more than 10% (relative), plus a small absolute slack
for timer noise on fast rows.

Exit status: 0 when every shard count is within budget, 1 otherwise.
Usage: scripts/bench_trend.py [BENCH_sharded.json [ci/bench-baseline.json]]
"""

import json
import sys

RELATIVE_TOLERANCE = 0.10  # the ">10% vs baseline" gate
ABSOLUTE_SLACK = 0.02      # timer noise on sub-millisecond rows


def overhead_ratios(report):
    """Map shard count -> wall-time ratio vs the 1-shard row."""
    rows = {r["shards"]: r["millis"] for r in report["results"]}
    if 1 not in rows or rows[1] <= 0:
        raise SystemExit("bench report has no usable 1-shard baseline row")
    return {shards: millis / rows[1] for shards, millis in rows.items()}


def main():
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sharded.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "ci/bench-baseline.json"
    with open(bench_path) as f:
        current = overhead_ratios(json.load(f))
    with open(base_path) as f:
        baseline = json.load(f)["sharded_overhead_ratio"]

    failures = []
    for shards, base_ratio in sorted(baseline.items(), key=lambda kv: int(kv[0])):
        shards = int(shards)
        if shards not in current:
            failures.append(f"shards={shards}: missing from {bench_path}")
            continue
        ratio = current[shards]
        budget = base_ratio * (1 + RELATIVE_TOLERANCE) + ABSOLUTE_SLACK
        verdict = "OK" if ratio <= budget else "REGRESSION"
        print(
            f"shards={shards}: overhead ratio {ratio:.3f} "
            f"(baseline {base_ratio:.3f}, budget {budget:.3f}) {verdict}"
        )
        if ratio > budget:
            failures.append(
                f"shards={shards}: {ratio:.3f} exceeds budget {budget:.3f}"
            )

    if failures:
        print("sharded-overhead regression vs committed baseline:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("sharded overhead within budget for every shard count")
    return 0


if __name__ == "__main__":
    sys.exit(main())
