#!/usr/bin/env python3
"""Perf-trajectory gate for the extraction engines.

Reads the BENCH_sharded.json and BENCH_streaming.json that
`overhead_report` just emitted and compares them against the committed
baseline in ci/bench-baseline.json:

- **sharded overhead** — the ratio of the k-shard wall time to the
  1-shard (inline) wall time regresses when it exceeds the baseline
  ratio by more than 10% (relative), plus a small absolute slack for
  timer noise on fast rows;
- **streaming latency** — the per-interval p95 extraction latency of the
  streaming replay regresses when it exceeds the baseline by more than
  15% (relative), plus an absolute slack for scheduler noise;
- **low-support mining** — BENCH_mining.json's pool/sequential wall-time
  ratio per (support, miner) row regresses when it exceeds the baseline
  ratio by more than 25% (relative) plus an absolute slack, **once** the
  baseline carries a `mining_pool_seq_ratio` section; until then the
  rows are reported informationally (on a 1-CPU runner the pool can
  only add overhead, so a dev-container baseline would gate noise);
- **rule-layer overhead** — BENCH_rules.json's rule-pass/itemset-only
  wall-time ratio per (support, miner) row is gated the same way against
  the baseline's `rules_overhead_ratio` section, and reported
  informationally while the baseline lacks it;
- **columnar ingest** — BENCH_ingest.json's optimized/baseline wall-time
  ratio per ingest metric (mmap vs heap-read parse, columnar vs record
  histogram build and pre-filter) is gated the same way against the
  baseline's `ingest_columnar_ratio` section, and reported
  informationally while the baseline lacks it;
- **vectorized kernels** — BENCH_kernels.json's batched/scalar wall-time
  ratio per kernel metric (SplitMix64 binning, small-set membership) is
  gated the same way against the baseline's top-level
  `kernel_bin_ratio` / `kernel_prefilter_ratio` keys, and reported
  informationally while the baseline lacks them. `overhead_report
  --write-baseline` records all of these sections, so the first
  re-record on CI hardware arms the dormant gates (see ci/README.md).

Key skew between the report and the baseline is tolerated in both
directions: a shard count (or latency percentile) present on one side
only is reported as a warning, never a failure, so adding a new
benchmark does not break old baselines and trimming a baseline does not
break new reports.

A trend table is printed to stdout and, when the GITHUB_STEP_SUMMARY
environment variable points at a writable file (as it does in GitHub
Actions), appended there as a Markdown job summary.

Exit status: 0 when every gated metric is within budget, 1 otherwise.
Usage: scripts/bench_trend.py [BENCH_sharded.json [ci/bench-baseline.json
                               [BENCH_streaming.json [BENCH_mining.json
                               [BENCH_rules.json [BENCH_ingest.json
                               [BENCH_kernels.json]]]]]]]
"""

import json
import os
import sys

SHARDED_RELATIVE_TOLERANCE = 0.10   # the ">10% vs baseline" gate
SHARDED_ABSOLUTE_SLACK = 0.02       # timer noise on sub-millisecond rows
STREAMING_RELATIVE_TOLERANCE = 0.15  # the ">15% vs baseline" gate
STREAMING_ABSOLUTE_SLACK_US = 2000   # scheduler noise on short intervals
RATIO_RELATIVE_TOLERANCE = 0.25      # mining + rule wall-time-ratio gates
RATIO_ABSOLUTE_SLACK = 0.10          # timer noise on millisecond rows


def warn(message):
    print(f"warning: {message}")


def overhead_ratios(report):
    """Map shard count -> wall-time ratio vs the 1-shard row."""
    rows = {r["shards"]: r["millis"] for r in report["results"]}
    if 1 not in rows or rows[1] <= 0:
        raise SystemExit("bench report has no usable 1-shard baseline row")
    return {shards: millis / rows[1] for shards, millis in rows.items()}


def gate_sharded(bench_path, baseline, rows):
    """Gate sharded overhead ratios (appending to `rows`); returns failures."""
    try:
        with open(bench_path) as f:
            current = overhead_ratios(json.load(f))
    except FileNotFoundError:
        return [f"sharded report {bench_path} is missing"]

    base = {int(k): v for k, v in baseline.get("sharded_overhead_ratio", {}).items()}
    if not base:
        warn("baseline has no sharded_overhead_ratio section; skipping gate")
        return []

    failures = []
    for shards in sorted(base):
        if shards not in current:
            warn(f"shards={shards} in baseline but not in {bench_path}; skipping")
            continue
        ratio = current[shards]
        budget = base[shards] * (1 + SHARDED_RELATIVE_TOLERANCE) + SHARDED_ABSOLUTE_SLACK
        verdict = "OK" if ratio <= budget else "REGRESSION"
        print(
            f"shards={shards}: overhead ratio {ratio:.3f} "
            f"(baseline {base[shards]:.3f}, budget {budget:.3f}) {verdict}"
        )
        rows.append(
            (f"sharded overhead x{shards}", f"{base[shards]:.3f}",
             f"{ratio:.3f}", f"{budget:.3f}", verdict)
        )
        if ratio > budget:
            failures.append(f"shards={shards}: {ratio:.3f} exceeds budget {budget:.3f}")
    for shards in sorted(set(current) - set(base)):
        warn(f"shards={shards} in {bench_path} but not in baseline; not gated")
    return failures


def gate_streaming(bench_path, baseline, rows):
    """Gate streaming p95 latency (appending to `rows`); returns failures."""
    base = baseline.get("streaming_latency_micros")
    if not base:
        warn("baseline has no streaming_latency_micros section; skipping gate")
        return []
    try:
        with open(bench_path) as f:
            current = json.load(f).get("latency_micros", {})
    except FileNotFoundError:
        return [f"streaming report {bench_path} is missing"]

    failures = []
    for percentile in sorted(base):
        if percentile not in current:
            warn(f"latency {percentile} in baseline but not in {bench_path}; skipping")
            continue
        gated = percentile == "p95"
        value = current[percentile]
        budget = base[percentile] * (1 + STREAMING_RELATIVE_TOLERANCE) \
            + STREAMING_ABSOLUTE_SLACK_US
        verdict = "OK" if value <= budget else "REGRESSION"
        if not gated:
            verdict = "info"
        print(
            f"streaming {percentile}: {value} µs "
            f"(baseline {base[percentile]} µs, budget {budget:.0f} µs) {verdict}"
        )
        rows.append(
            (f"streaming latency {percentile}", f"{base[percentile]} µs",
             f"{value} µs", f"{budget:.0f} µs", verdict)
        )
        if gated and value > budget:
            failures.append(
                f"streaming {percentile}: {value} µs exceeds budget {budget:.0f} µs"
            )
    for percentile in sorted(set(current) - set(base)):
        warn(f"latency {percentile} in {bench_path} but not in baseline; not gated")
    return failures


def gate_ratio_rows(label, bench_path, base, numer_key, denom_key, rows):
    """Gate per-(support, miner) wall-time ratios against a baseline map
    keyed "support:miner" (appending to `rows`); returns failures.

    When `base` is empty (the baseline does not carry the section yet)
    every row is reported informationally instead — the gate arms itself
    the moment a re-recorded baseline carries the section.
    """
    try:
        with open(bench_path) as f:
            report = json.load(f)
    except FileNotFoundError:
        if base:
            return [f"{label} report {bench_path} is missing"]
        warn(f"{label} report {bench_path} is missing; skipping (informational)")
        return []

    failures = []
    seen = set()
    for r in report.get("results", []):
        denom, numer = r[denom_key], r[numer_key]
        ratio = numer / denom if denom > 0 else 1.0
        key = f"{r['support']}:{r['miner']}"
        seen.add(key)
        metric = f"{label} s={r['support']} {r['miner']}"
        if key in base:
            budget = base[key] * (1 + RATIO_RELATIVE_TOLERANCE) + RATIO_ABSOLUTE_SLACK
            verdict = "OK" if ratio <= budget else "REGRESSION"
            print(
                f"{metric}: ratio {ratio:.2f}x "
                f"(baseline {base[key]:.2f}x, budget {budget:.2f}x) {verdict}"
            )
            rows.append(
                (metric, f"{base[key]:.2f}x", f"{ratio:.2f}x", f"{budget:.2f}x", verdict)
            )
            if ratio > budget:
                failures.append(f"{metric}: {ratio:.2f}x exceeds budget {budget:.2f}x")
        else:
            if base:
                warn(f"{key} in {bench_path} but not in baseline; not gated")
            print(f"{metric}: ratio {ratio:.2f}x info")
            rows.append((metric, "-", f"{ratio:.2f}x", "-", "info"))
    for key in sorted(set(base) - seen):
        warn(f"{key} in baseline but not in {bench_path}; skipping")
    return failures


def gate_mining(bench_path, baseline, rows):
    """Gate (or, without a baseline section, report) the low-support
    mining pool/sequential ratios; returns failures."""
    base = baseline.get("mining_pool_seq_ratio", {})
    if not base:
        warn("baseline has no mining_pool_seq_ratio section; rows are informational")
    failures = gate_ratio_rows(
        "mining pool/seq", bench_path, base,
        "pool_millis", "sequential_millis", rows,
    )
    try:
        with open(bench_path) as f:
            report = json.load(f)
    except FileNotFoundError:
        return failures
    workers = report.get("pool_workers", 0)
    tasks_total = sum(r.get("pool_tasks", 0) for r in report.get("results", []))
    if workers > 1 and tasks_total <= 1:
        # Informational red flag, not a gate: the task-parallel search
        # phases should visibly dispatch on any multi-width pool.
        warn(f"pool of {workers} workers dispatched only {tasks_total} tree task(s)")
    # Work-stealing scheduler counters (informational until the baseline
    # re-records with expectations over them): steals proves the deques
    # actually rebalanced, max_queue_depth shows fork pressure, and
    # dispatch_overhead_ns is the calibrated cost-model input.
    for key in ("tree_tasks", "steals", "max_queue_depth", "dispatch_overhead_ns"):
        if key in report:
            value = report[key]
            print(f"mining scheduler {key}: {value} info")
            rows.append((f"scheduler {key}", "-", str(value), "-", "info"))
    return failures


def gate_rules(bench_path, baseline, rows):
    """Gate (or, without a baseline section, report) the rule-layer
    rule-pass/itemset-only ratios; returns failures."""
    base = baseline.get("rules_overhead_ratio", {})
    if not base:
        warn("baseline has no rules_overhead_ratio section; rows are informational")
    return gate_ratio_rows(
        "rules/itemsets", bench_path, base,
        "rules_millis", "itemsets_millis", rows,
    )


def gate_ingest(bench_path, baseline, rows):
    """Gate (or, without a baseline section, report) the columnar-ingest
    optimized/baseline ratios per metric; returns failures.

    Metrics: "parse" (mmap vs heap read), "histogram" and "prefilter"
    (columnar vs record layout). Lower is better; the gate uses the same
    relative tolerance + absolute slack as the other ratio gates and
    stays dormant until the baseline carries `ingest_columnar_ratio`.
    """
    base = baseline.get("ingest_columnar_ratio", {})
    if not base:
        warn("baseline has no ingest_columnar_ratio section; rows are informational")
    try:
        with open(bench_path) as f:
            report = json.load(f)
    except FileNotFoundError:
        if base:
            return [f"ingest report {bench_path} is missing"]
        warn(f"ingest report {bench_path} is missing; skipping (informational)")
        return []

    failures = []
    seen = set()
    for r in report.get("results", []):
        denom, numer = r["baseline_millis"], r["optimized_millis"]
        ratio = numer / denom if denom > 0 else 1.0
        key = r["metric"]
        seen.add(key)
        metric = f"ingest {key}"
        if key in base:
            budget = base[key] * (1 + RATIO_RELATIVE_TOLERANCE) + RATIO_ABSOLUTE_SLACK
            verdict = "OK" if ratio <= budget else "REGRESSION"
            print(
                f"{metric}: ratio {ratio:.2f}x "
                f"(baseline {base[key]:.2f}x, budget {budget:.2f}x) {verdict}"
            )
            rows.append(
                (metric, f"{base[key]:.2f}x", f"{ratio:.2f}x", f"{budget:.2f}x", verdict)
            )
            if ratio > budget:
                failures.append(f"{metric}: {ratio:.2f}x exceeds budget {budget:.2f}x")
        else:
            if base:
                warn(f"{key} in {bench_path} but not in baseline; not gated")
            print(f"{metric}: ratio {ratio:.2f}x info")
            rows.append((metric, "-", f"{ratio:.2f}x", "-", "info"))
    for key in sorted(set(base) - seen):
        warn(f"{key} in baseline but not in {bench_path}; skipping")
    return failures


def gate_kernels(bench_path, baseline, rows):
    """Gate (or, without baseline keys, report) the vectorized-kernel
    batched/scalar ratios; returns failures.

    Metrics: "bin" (batched SplitMix64 binning vs the per-value scalar
    loop) and "prefilter" (branch-free small-set membership vs the
    BTreeSet probe), mapped to the top-level baseline scalars
    `kernel_bin_ratio` / `kernel_prefilter_ratio`. Lower is better; the
    gate uses the same relative tolerance + absolute slack as the other
    ratio gates and stays dormant until the baseline carries the keys
    (re-record on CI hardware to arm, see ci/README.md).
    """
    base = {
        key: baseline[f"kernel_{key}_ratio"]
        for key in ("bin", "prefilter")
        if f"kernel_{key}_ratio" in baseline
    }
    if not base:
        warn("baseline has no kernel_*_ratio keys; rows are informational")
    try:
        with open(bench_path) as f:
            report = json.load(f)
    except FileNotFoundError:
        if base:
            return [f"kernels report {bench_path} is missing"]
        warn(f"kernels report {bench_path} is missing; skipping (informational)")
        return []

    failures = []
    seen = set()
    for r in report.get("results", []):
        denom, numer = r["scalar_millis"], r["batched_millis"]
        ratio = numer / denom if denom > 0 else 1.0
        key = r["metric"]
        seen.add(key)
        metric = f"kernel {key}"
        if key in base:
            budget = base[key] * (1 + RATIO_RELATIVE_TOLERANCE) + RATIO_ABSOLUTE_SLACK
            verdict = "OK" if ratio <= budget else "REGRESSION"
            print(
                f"{metric}: ratio {ratio:.2f}x "
                f"(baseline {base[key]:.2f}x, budget {budget:.2f}x) {verdict}"
            )
            rows.append(
                (metric, f"{base[key]:.2f}x", f"{ratio:.2f}x", f"{budget:.2f}x", verdict)
            )
            if ratio > budget:
                failures.append(f"{metric}: {ratio:.2f}x exceeds budget {budget:.2f}x")
        else:
            if base:
                warn(f"{key} in {bench_path} but not in baseline; not gated")
            print(f"{metric}: ratio {ratio:.2f}x info")
            rows.append((metric, "-", f"{ratio:.2f}x", "-", "info"))
    for key in sorted(set(base) - seen):
        warn(f"kernel_{key}_ratio in baseline but not in {bench_path}; skipping")
    return failures


def write_step_summary(rows):
    """Append the trend table as Markdown to the GitHub job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not rows:
        return
    lines = [
        "### Perf trend vs committed baseline",
        "",
        "| metric | baseline | current | budget | verdict |",
        "|---|---|---|---|---|",
    ]
    for metric, base, current, budget, verdict in rows:
        icon = {"OK": "✅", "REGRESSION": "❌"}.get(verdict, "ℹ️")
        lines.append(f"| {metric} | {base} | {current} | {budget} | {icon} {verdict} |")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        warn(f"cannot write job summary {path}: {e}")


def main():
    sharded_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sharded.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "ci/bench-baseline.json"
    streaming_path = sys.argv[3] if len(sys.argv) > 3 else "BENCH_streaming.json"
    mining_path = sys.argv[4] if len(sys.argv) > 4 else "BENCH_mining.json"
    rules_path = sys.argv[5] if len(sys.argv) > 5 else "BENCH_rules.json"
    ingest_path = sys.argv[6] if len(sys.argv) > 6 else "BENCH_ingest.json"
    kernels_path = sys.argv[7] if len(sys.argv) > 7 else "BENCH_kernels.json"
    with open(base_path) as f:
        baseline = json.load(f)

    rows = []
    failures = gate_sharded(sharded_path, baseline, rows)
    failures += gate_streaming(streaming_path, baseline, rows)
    failures += gate_mining(mining_path, baseline, rows)
    failures += gate_rules(rules_path, baseline, rows)
    failures += gate_ingest(ingest_path, baseline, rows)
    failures += gate_kernels(kernels_path, baseline, rows)
    write_step_summary(rows)

    if failures:
        print("perf regression vs committed baseline:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("every gated metric within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
