//! Cross-shard determinism suite: the sharded parallel engine must be
//! **bit-identical** to the sequential pipeline for every shard count
//! (1..=8), every miner, and arbitrary workloads — the load-bearing
//! design constraint of the sharded extraction engine. Every merge in
//! the engine is an exact integer sum, a set union, or an in-order
//! concatenation, so equality holds exactly, not approximately; these
//! properties assert it across random scenario seeds, scales, supports,
//! and transaction modes.

use anomex::core::{prefilter_indices, Engine, ExtractRequest, ShardedExtractor, TransactionMode};
use anomex::core::{AnomalyExtractor, ExtractionConfig, PrefilterMode};
use anomex::mining::RuleConfig;
use anomex::prelude::*;
use anomex_core::prefilter_indices_sharded;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

/// Assert two extractions are the same to the bit.
fn assert_extractions_identical(a: &Extraction, b: &Extraction, context: &str) {
    assert_eq!(a.itemsets, b.itemsets, "{context}: itemsets diverged");
    for (x, y) in a.itemsets.iter().zip(&b.itemsets) {
        assert_eq!(x.support, y.support, "{context}: support diverged on {x}");
    }
    assert_eq!(a.levels, b.levels, "{context}: level stats diverged");
    assert_eq!(a.total_flows, b.total_flows, "{context}");
    assert_eq!(a.suspicious_flows, b.suspicious_flows, "{context}");
    assert_eq!(
        a.cost_reduction.to_bits(),
        b.cost_reduction.to_bits(),
        "{context}: cost reduction diverged"
    );
    assert_eq!(a.metadata, b.metadata, "{context}");
    match (&a.rules, &b.rules) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.transactions, y.transactions, "{context}");
            assert_eq!(x.len(), y.len(), "{context}: rule count diverged");
            for (r, s) in x.rules.iter().zip(&y.rules) {
                assert_eq!(r.rule.antecedent(), s.rule.antecedent(), "{context}");
                assert_eq!(r.rule.consequent(), s.rule.consequent(), "{context}");
                assert_eq!(r.rule.support, s.rule.support, "{context}");
                assert_eq!(
                    r.score.to_bits(),
                    s.score.to_bits(),
                    "{context}: rule score diverged on {}",
                    r.rule
                );
                assert_eq!(r.rule.confidence.to_bits(), s.rule.confidence.to_bits());
                assert_eq!(r.rule.lift.to_bits(), s.rule.lift.to_bits());
                assert_eq!(r.rule.leverage.to_bits(), s.rule.leverage.to_bits());
                assert_eq!(
                    r.rule.conviction.map(f64::to_bits),
                    s.rule.conviction.map(f64::to_bits)
                );
            }
        }
        _ => panic!("{context}: rule presence diverged"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Offline: for a random Table-2-style workload, every (miner,
    /// shards, tx-mode) combination extracts exactly what the
    /// sequential path does.
    #[test]
    fn offline_extraction_is_shard_invariant(
        seed in 0u64..10_000,
        scale_pct in 1u64..=4,
        support_div in 1u64..=4,
        shards in 1usize..=8,
        miner_idx in 0usize..3,
        extended in proptest::sample::select(vec![false, true]),
    ) {
        let w = table2_workload(seed, scale_pct as f64 * 0.01);
        let miner = MinerKind::ALL[miner_idx];
        let tx_mode = if extended {
            TransactionMode::WithPrefixes
        } else {
            TransactionMode::Canonical
        };
        let support = (w.min_support / support_div).max(1);
        let mut md = MetaData::new();
        for port in [7000u64, 80, 9022, 25] {
            md.insert(FlowFeature::DstPort, port);
        }
        let request = ExtractRequest::new(&w.flows, &md, support)
            .transactions(tx_mode)
            .miner(miner);
        let sequential = Engine::extract(&request);
        let sharded = Engine::extract(&request.shards(nz(shards)));
        assert_extractions_identical(
            &sequential,
            &sharded,
            &format!("seed={seed} miner={miner} shards={shards} extended={extended}"),
        );
    }

    /// Rule-layer shard invariance: with the association-rule layer on,
    /// the sharded engine's rules — the single mining pass, the rule
    /// fan-out over base item-sets, and the z-score ranking — are
    /// bit-identical to the sequential path for every shard count and
    /// miner, rare mode included.
    #[test]
    fn rule_extraction_is_shard_invariant(
        seed in 0u64..10_000,
        support_div in 1u64..=4,
        shards in 1usize..=8,
        miner_idx in 0usize..3,
        rare in proptest::sample::select(vec![false, true]),
    ) {
        let w = table2_workload(seed, 0.02);
        let miner = MinerKind::ALL[miner_idx];
        // Rare mode mines all-frequent at the deepest per-level floor
        // (`min_support >> (width - 1)`); keep that floor ≥ 4 so the
        // property exercises the rare path without driving Apriori into
        // the support-1 candidate explosion (a memory bomb on CI).
        let support = if rare {
            w.min_support.max(256)
        } else {
            (w.min_support / support_div).max(1)
        };
        // Permissive filters so the populations being compared are rich.
        let rc = RuleConfig { min_confidence: 0.3, min_lift: 0.0, rare };
        let mut md = MetaData::new();
        for port in [7000u64, 80, 9022, 25] {
            md.insert(FlowFeature::DstPort, port);
        }
        let request = ExtractRequest::new(&w.flows, &md, support)
            .miner(miner)
            .rules(&rc);
        let sequential = Engine::extract(&request);
        let sharded = Engine::extract(&request.shards(nz(shards)));
        prop_assert!(sequential.rules.is_some(), "the rule layer must be on");
        assert_extractions_identical(
            &sequential,
            &sharded,
            &format!("rules seed={seed} miner={miner} shards={shards} rare={rare}"),
        );
    }

    /// The sharded pre-filter yields the exact index sequence of the
    /// sequential one, for both union and intersection semantics.
    #[test]
    fn prefilter_is_shard_invariant(
        seed in 0u64..10_000,
        shards in 1usize..=8,
        intersection in proptest::sample::select(vec![false, true]),
    ) {
        let w = table2_workload(seed, 0.03);
        let mode = if intersection {
            PrefilterMode::Intersection
        } else {
            PrefilterMode::Union
        };
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::Packets, 2);
        let sequential = prefilter_indices(&w.flows, &md, mode);
        let sharded = prefilter_indices_sharded(&w.flows, &md, mode, nz(shards));
        prop_assert_eq!(sequential, sharded);
    }
}

proptest! {
    // The online property runs whole scenarios (training + detection),
    // so fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Online: a [`ShardedExtractor`] fed a full scenario produces the
    /// same alarm stream, the same meta-data, bit-identical KL series,
    /// and identical extractions as the sequential [`AnomalyExtractor`],
    /// for every shard count and miner.
    #[test]
    fn online_pipeline_is_shard_invariant(
        seed in 0u64..1_000,
        shards in 2usize..=8,
        miner_idx in 0usize..3,
    ) {
        let scenario = Scenario::small(seed);
        let config = ExtractionConfig {
            interval_ms: scenario.interval_ms(),
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 800,
            miner: MinerKind::ALL[miner_idx],
            // Rules on, so the online comparison covers the rule layer
            // too (assert_extractions_identical checks it bit-for-bit).
            rules: Some(RuleConfig::default()),
            ..ExtractionConfig::default()
        };
        let mut sequential = AnomalyExtractor::try_new(config.clone()).unwrap();
        let mut sharded = ShardedExtractor::try_new(config, nz(shards)).unwrap();
        for i in 0..scenario.interval_count().min(23) {
            let interval = scenario.generate(i);
            let a = sequential.process_interval(&interval.flows);
            let b = sharded.process_interval(&interval.flows);
            prop_assert_eq!(a.observation.alarm, b.observation.alarm, "interval {}", i);
            prop_assert_eq!(&a.observation.metadata, &b.observation.metadata);
            for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
                prop_assert_eq!(x.alarm, y.alarm);
                prop_assert_eq!(&x.voted_values, &y.voted_values);
                for (cx, cy) in x.clones.iter().zip(&y.clones) {
                    prop_assert_eq!(cx.kl.map(f64::to_bits), cy.kl.map(f64::to_bits));
                    prop_assert_eq!(
                        cx.first_diff.map(f64::to_bits),
                        cy.first_diff.map(f64::to_bits)
                    );
                }
            }
            match (&a.extraction, &b.extraction) {
                (None, None) => {}
                (Some(x), Some(y)) => assert_extractions_identical(
                    x,
                    y,
                    &format!("seed={seed} shards={shards} interval={i}"),
                ),
                _ => panic!("extraction presence diverged at interval {i}"),
            }
        }
    }
}
