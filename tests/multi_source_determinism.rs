//! Multi-source determinism suite: the N-exporter merge engine must be
//! **bit-identical** to sequential batch extraction of the per-interval
//! concatenation of all sources' flows — for every miner, pool-worker
//! count, source count, clock skew, and cross-source interleaving, and
//! even when a source goes silent mid-stream. The merge layer adds
//! per-source assemblers and a watermark grid on top of the streaming
//! stack, and none of it may perturb a single bit of output: a merged
//! interval is exactly the source-ordered concatenation of each lane's
//! window, fed in order through the same pool-backed engine the batch
//! path uses.

use anomex::core::{
    AnomalyExtractor, Extraction, ExtractionConfig, IntervalOutcome, MultiSourceExtractor,
};
use anomex::prelude::*;
use anomex::traffic::{LinkConfig, MultiSourceScenario};
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn config_for(interval_ms: u64, miner: MinerKind) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms,
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        miner,
        ..ExtractionConfig::default()
    }
}

/// SplitMix64: a tiny deterministic generator for interleaving choices.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Assert two extractions are the same to the bit.
fn assert_extractions_identical(a: &Extraction, b: &Extraction, context: &str) {
    assert_eq!(a.itemsets, b.itemsets, "{context}: itemsets diverged");
    for (x, y) in a.itemsets.iter().zip(&b.itemsets) {
        assert_eq!(x.support, y.support, "{context}: support diverged on {x}");
    }
    assert_eq!(a.levels, b.levels, "{context}: level stats diverged");
    assert_eq!(a.total_flows, b.total_flows, "{context}");
    assert_eq!(a.suspicious_flows, b.suspicious_flows, "{context}");
    assert_eq!(
        a.cost_reduction.to_bits(),
        b.cost_reduction.to_bits(),
        "{context}: cost reduction diverged"
    );
    assert_eq!(a.metadata, b.metadata, "{context}");
}

/// Assert one merged outcome equals one batch outcome, KL bits and all.
fn assert_outcomes_identical(a: &IntervalOutcome, b: &IntervalOutcome, context: &str) {
    assert_eq!(a.observation.alarm, b.observation.alarm, "{context}");
    assert_eq!(a.observation.metadata, b.observation.metadata, "{context}");
    for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
        assert_eq!(x.alarm, y.alarm, "{context}");
        assert_eq!(&x.voted_values, &y.voted_values, "{context}");
        for (cx, cy) in x.clones.iter().zip(&y.clones) {
            assert_eq!(
                cx.kl.map(f64::to_bits),
                cy.kl.map(f64::to_bits),
                "{context}"
            );
        }
    }
    match (&a.extraction, &b.extraction) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_extractions_identical(x, y, context),
        _ => panic!("{context}: extraction presence diverged"),
    }
}

proptest! {
    // Full scenarios (training + detection) per case: few, heavy cases.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// N-source merged extraction is bit-identical to sequential batch
    /// extraction of the per-interval concatenation of all sources'
    /// flows — for arbitrary source counts, per-source clock skews,
    /// cross-source delivery orders (whole-interval rotation), pool
    /// worker counts, and miners, including one source going silent
    /// mid-stream.
    #[test]
    fn multi_source_equals_batch_of_concatenated_flows(
        seed in 0u64..1_000,
        shards in 1usize..=4,
        n_sources in 1usize..=3,
        miner_idx in 0usize..3,
        skew_step in 0u64..2_000,
        silence_raw in 0u64..20,
    ) {
        // The vendored proptest has no `option::of`; values below 12
        // mean "no source goes silent", 12..20 are the cutoff interval.
        let silence_at = (silence_raw >= 12).then_some(silence_raw);
        let rates = [1.0, 0.45, 0.3];
        let links: Vec<LinkConfig> = (0..n_sources)
            .map(|i| LinkConfig {
                rate: rates[i],
                skew_ms: i as u64 * skew_step,
                carries_anomalies: i == 0,
            })
            .collect();
        let scenario = MultiSourceScenario::small(seed, links);
        let miner = MinerKind::ALL[miner_idx];
        let intervals = scenario.interval_count().min(22);
        // A source can only go silent when there is another one to keep
        // the stream (and the watermark) alive.
        let silent = (n_sources > 1).then_some(n_sources - 1).zip(silence_at);

        // Batch reference: one sequential engine over the per-interval
        // concatenation (source order), silent source contributing
        // nothing from its cutoff on.
        let config = config_for(scenario.interval_ms(), miner);
        let mut batch = AnomalyExtractor::try_new(config.clone()).unwrap();
        let mut reference = Vec::new();
        for i in 0..intervals {
            let mut merged = Vec::new();
            for s in 0..n_sources {
                if silent.is_some_and(|(ss, c)| ss == s && i >= c) {
                    continue;
                }
                merged.extend(scenario.generate(s, i).flows);
            }
            reference.push(batch.process_interval(&merged));
        }

        // Streamed fan-in: deliver whole per-source intervals in a
        // rotated order that changes every interval, so sources race
        // each other differently case by case.
        let mut engine = MultiSourceExtractor::try_new(
            config,
            nz(shards),
            &scenario.source_specs(),
            None,
        )
        .unwrap();
        let mut order_state = seed ^ 0xC0FF_EE00;
        let mut events = Vec::new();
        for i in 0..intervals {
            let rotation = (mix(&mut order_state) as usize) % n_sources;
            for r in 0..n_sources {
                let s = (r + rotation) % n_sources;
                if let Some((ss, c)) = silent {
                    if s == ss && i >= c {
                        if i == c {
                            events.extend(engine.finish_source(SourceId(s as u32)));
                        }
                        continue;
                    }
                }
                for flow in scenario.generate(s, i).flows {
                    events.extend(engine.push(SourceId(s as u32), flow));
                }
            }
        }
        let (tail, summary) = engine.finish();
        events.extend(tail);

        prop_assert_eq!(events.len() as u64, intervals, "one event per grid interval");
        prop_assert_eq!(summary.intervals, intervals);
        prop_assert_eq!(summary.dropped_flows, 0);
        prop_assert_eq!(summary.sources.len(), n_sources);
        for (i, (event, reference)) in events.iter().zip(&reference).enumerate() {
            prop_assert_eq!(event.event.index, i as u64);
            prop_assert_eq!(
                event.source_flows.iter().sum::<usize>(),
                event.event.flows,
                "per-source weights sum to the merged flow count"
            );
            assert_outcomes_identical(
                &event.event.outcome,
                reference,
                &format!(
                    "seed={seed} miner={miner} shards={shards} sources={n_sources} \
                     skew={skew_step} silent={silent:?} interval={i}"
                ),
            );
        }
    }

    /// Flow-level interleaving invariance: any two cross-source delivery
    /// orders (per-source order preserved) yield byte-for-byte the same
    /// merged event stream — the merge's scheduling independence, on a
    /// workload small enough to exercise per-flow races.
    #[test]
    fn merged_events_are_interleaving_invariant(
        seed in 0u64..1_000,
        order_a in 0u64..1_000_000,
        order_b in 0u64..1_000_000,
    ) {
        let interval_ms = 1_000u64;
        // Two hand-built lanes, four windows each, with a skewed clock
        // on lane 1.
        let specs = [SourceSpec::new(0u32, 0), SourceSpec::new(1u32, 300)];
        let lane = |origin: u64, salt: u64| -> Vec<FlowRecord> {
            let mut state = seed ^ salt;
            (0..40u64)
                .map(|i| {
                    let window = i / 10;
                    let jitter = mix(&mut state) % interval_ms;
                    FlowRecord::new(
                        origin + window * interval_ms + jitter,
                        std::net::Ipv4Addr::new(10, 0, (mix(&mut state) % 8) as u8, 1),
                        std::net::Ipv4Addr::new(10, 1, 0, (mix(&mut state) % 8) as u8),
                        (1000 + mix(&mut state) % 8) as u16,
                        (53 + mix(&mut state) % 3) as u16,
                        Protocol::Udp,
                    )
                })
                .collect()
        };
        let mut lanes = vec![lane(0, 0xAA), lane(300, 0xBB)];
        for flows in &mut lanes {
            flows.sort_by_key(|f| f.start_ms);
        }

        let run = |order_seed: u64| -> Vec<(u64, usize, Vec<usize>, bool)> {
            let mut engine = MultiSourceExtractor::try_new(
                config_for(interval_ms, MinerKind::Apriori),
                nz(2),
                &specs,
                None,
            )
            .unwrap();
            let mut cursors = [0usize; 2];
            let mut state = order_seed;
            let mut events = Vec::new();
            loop {
                let remaining: Vec<usize> = (0..2)
                    .filter(|&s| cursors[s] < lanes[s].len())
                    .collect();
                if remaining.is_empty() {
                    break;
                }
                let s = remaining[(mix(&mut state) as usize) % remaining.len()];
                let flow = lanes[s][cursors[s]];
                cursors[s] += 1;
                events.extend(engine.push(SourceId(s as u32), flow));
            }
            let (tail, _) = engine.finish();
            events.extend(tail);
            events
                .into_iter()
                .map(|e| {
                    let alarmed = e.alarmed();
                    (e.event.index, e.event.flows, e.source_flows, alarmed)
                })
                .collect()
        };
        prop_assert_eq!(run(order_a), run(order_b));
    }
}
