//! Property suite for the association-rule layer: every rule a
//! [`MineTask::run_with_rules`] run emits must satisfy the metric
//! definitions *exactly* (recomputed from brute-force support counts
//! over the transactions, compared by bit pattern), stay in its valid
//! range, honor the configured filters, and come out bit-identical in
//! every execution context — the facade-level contract of the rule
//! engine that `crates/mining/tests/exec_equivalence.rs` and
//! `tests/sharded_determinism.rs` assert from their own angles.

use std::num::NonZeroUsize;

use anomex::mining::par::Exec;
use anomex::mining::rules::CONVICTION_SCORE_CAP;
use anomex::mining::{Item, MineTask, MinerKind, RuleConfig, Transaction, TransactionSet};
use anomex_netflow::FlowFeature;
use crossbeam::WorkerPool;
use proptest::prelude::*;

/// A random transaction: 1–7 items, at most one per feature, values from
/// a small alphabet so item-sets repeat and rules are plentiful.
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::btree_map(0usize..7, 0u64..4, 1..=7).prop_map(|m| {
        let items: Vec<Item> = m
            .into_iter()
            .map(|(f, v)| Item::new(FlowFeature::from_index(f), v))
            .collect();
        Transaction::from_items(&items).expect("btree_map keys are distinct features")
    })
}

fn arb_set(max: usize) -> impl Strategy<Value = TransactionSet> {
    proptest::collection::vec(arb_transaction(), 1..max).prop_map(TransactionSet::from_transactions)
}

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

/// The rule key used for cross-run set comparisons.
fn key(rule: &anomex::mining::Rule) -> (Vec<Item>, Vec<Item>) {
    (rule.antecedent().to_vec(), rule.consequent().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every emitted rule's supports equal the brute-force counts over
    /// the transactions, and every metric equals its definition applied
    /// to those counts — to the bit, not approximately.
    #[test]
    fn metrics_match_their_definitions_exactly(
        set in arb_set(100),
        min_support in 1u64..4,
        miner_idx in 0usize..3,
    ) {
        let rc = RuleConfig { min_confidence: 0.2, min_lift: 0.0, rare: false };
        let out = MineTask::maximal(MinerKind::ALL[miner_idx], &set, min_support)
            .run_with_rules(&rc, Exec::inline());
        let n = set.len() as u64;
        prop_assert_eq!(out.rules.transactions, n);
        for scored in &out.rules.rules {
            let r = &scored.rule;
            let union: Vec<Item> = {
                let mut u = r.antecedent().to_vec();
                u.extend_from_slice(r.consequent());
                u.sort_unstable();
                u
            };
            prop_assert_eq!(r.support, set.support_of(&union), "supp(X∪Y) on {}", r);
            prop_assert_eq!(r.antecedent_support, set.support_of(r.antecedent()));
            prop_assert_eq!(r.consequent_support, set.support_of(r.consequent()));

            let confidence = r.support as f64 / r.antecedent_support as f64;
            let consequent_rel = r.consequent_support as f64 / n as f64;
            let lift = confidence / consequent_rel;
            let leverage = r.support as f64 / n as f64
                - (r.antecedent_support as f64 / n as f64) * consequent_rel;
            prop_assert_eq!(r.confidence.to_bits(), confidence.to_bits(), "confidence on {}", r);
            prop_assert_eq!(r.lift.to_bits(), lift.to_bits(), "lift on {}", r);
            prop_assert_eq!(r.leverage.to_bits(), leverage.to_bits(), "leverage on {}", r);
            match r.conviction {
                None => prop_assert_eq!(r.confidence.to_bits(), 1.0f64.to_bits(),
                    "∞ conviction only at confidence 1 ({})", r),
                Some(v) => prop_assert_eq!(
                    v.to_bits(),
                    ((1.0 - consequent_rel) / (1.0 - confidence)).to_bits(),
                    "conviction on {}", r
                ),
            }
        }
    }

    /// Structural and range invariants: antecedent and consequent are
    /// non-empty, sorted, and disjoint; every metric sits in its valid
    /// range; the filters bite; and the ranking is sorted by descending
    /// score.
    #[test]
    fn rules_are_well_formed_filtered_and_ranked(
        set in arb_set(100),
        min_support in 1u64..4,
        min_confidence in 0.0f64..1.0,
        min_lift in 0.0f64..2.0,
        miner_idx in 0usize..3,
    ) {
        let rc = RuleConfig { min_confidence, min_lift, rare: false };
        let out = MineTask::maximal(MinerKind::ALL[miner_idx], &set, min_support)
            .run_with_rules(&rc, Exec::inline());
        let n = set.len() as u64;
        for scored in &out.rules.rules {
            let r = &scored.rule;
            prop_assert!(!r.antecedent().is_empty() && !r.consequent().is_empty());
            prop_assert!(r.antecedent().windows(2).all(|w| w[0] < w[1]), "sorted antecedent");
            prop_assert!(r.consequent().windows(2).all(|w| w[0] < w[1]), "sorted consequent");
            prop_assert!(
                r.antecedent().iter().all(|i| !r.consequent().contains(i)),
                "X and Y are disjoint in {}", r
            );
            prop_assert!(r.support <= r.antecedent_support && r.support <= r.consequent_support);
            prop_assert!(r.antecedent_support <= n && r.consequent_support <= n);
            prop_assert!((0.0..=1.0).contains(&r.confidence), "confidence range on {}", r);
            prop_assert!(r.lift.is_finite() && r.lift >= 0.0, "lift range on {}", r);
            prop_assert!((-0.25..=0.25).contains(&r.leverage), "leverage range on {}", r);
            if let Some(v) = r.conviction {
                prop_assert!(v.is_finite() && v >= 0.0, "conviction range on {}", r);
            }
            prop_assert!(r.conviction_capped() <= CONVICTION_SCORE_CAP);
            prop_assert!(r.confidence >= min_confidence, "min-confidence filter on {}", r);
            prop_assert!(r.lift >= min_lift, "min-lift filter on {}", r);
            prop_assert!(scored.score.is_finite() && scored.score >= 0.0);
        }
        for pair in out.rules.rules.windows(2) {
            prop_assert!(
                pair[0].score.total_cmp(&pair[1].score).is_ge(),
                "ranking must be descending by score"
            );
        }
    }

    /// Bit-identity across execution contexts and pool widths, straight
    /// from the facade: the rule population (keys, supports, metrics,
    /// scores) of inline, scoped-threads and worker-pool runs is the
    /// same to the bit.
    #[test]
    fn rule_output_is_bit_identical_across_exec_contexts(
        set in arb_set(100),
        min_support in 1u64..4,
        pool_width in 2usize..5,
        miner_idx in 0usize..3,
    ) {
        let rc = RuleConfig { min_confidence: 0.2, min_lift: 0.0, rare: false };
        let task = MineTask::maximal(MinerKind::ALL[miner_idx], &set, min_support);
        let reference = task.run_with_rules(&rc, Exec::inline());
        let pool = WorkerPool::new(nz(pool_width));
        for (label, exec) in [
            ("threads", Exec::Threads(nz(3))),
            ("pool", Exec::Pool(&pool)),
        ] {
            let got = task.run_with_rules(&rc, exec);
            prop_assert_eq!(got.rules.len(), reference.rules.len(), "{} count", label);
            for (a, b) in got.rules.rules.iter().zip(&reference.rules.rules) {
                prop_assert_eq!(key(&a.rule), key(&b.rule), "{} order", label);
                prop_assert_eq!(a.rule.support, b.rule.support);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "{} score", label);
                prop_assert_eq!(a.rule.confidence.to_bits(), b.rule.confidence.to_bits());
                prop_assert_eq!(a.rule.lift.to_bits(), b.rule.lift.to_bits());
                prop_assert_eq!(a.rule.leverage.to_bits(), b.rule.leverage.to_bits());
                prop_assert_eq!(
                    a.rule.conviction.map(f64::to_bits),
                    b.rule.conviction.map(f64::to_bits)
                );
            }
        }
    }

    /// Rare mode only widens the search: every rule found in normal mode
    /// is also found (same supports) when the per-level floor is on.
    #[test]
    fn rare_mode_is_a_superset_of_normal_mode(
        set in arb_set(100),
        min_support in 2u64..6,
        miner_idx in 0usize..3,
    ) {
        let normal = RuleConfig { min_confidence: 0.2, min_lift: 0.0, rare: false };
        let rare = RuleConfig { rare: true, ..normal };
        let task = MineTask::maximal(MinerKind::ALL[miner_idx], &set, min_support);
        let base = task.run_with_rules(&normal, Exec::inline());
        let widened = task.run_with_rules(&rare, Exec::inline());
        prop_assert!(widened.rules.len() >= base.rules.len());
        for scored in &base.rules.rules {
            let found = widened
                .rules
                .rules
                .iter()
                .find(|w| key(&w.rule) == key(&scored.rule))
                .unwrap_or_else(|| panic!("rule {} lost in rare mode", scored.rule));
            prop_assert_eq!(found.rule.support, scored.rule.support);
            prop_assert_eq!(
                found.rule.confidence.to_bits(),
                scored.rule.confidence.to_bits(),
                "metrics are support-derived, so they cannot move"
            );
        }
    }
}
