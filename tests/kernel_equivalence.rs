//! Kernel bit-identity suite: the batched/AVX2 kernels of
//! `anomex_detector::kernels` must match the scalar references —
//! `BinHasher::mix`/`bin_of` and the scalar pre-filter — **bit-for-bit**
//! on every input, which is the contract that lets the whole online
//! stack (sharded, streaming, checkpoint/restore) ride the vectorized
//! hot loops untouched. Properties cover arbitrary values, seeds, bin
//! counts, value-set sizes, and ranges — including empty slices,
//! sub-chunk (`len < 8`) inputs, and `len % 8 != 0` tails — on **both**
//! backends explicitly, plus an end-to-end extraction bit-identity case
//! whose meaning under `ANOMEX_FORCE_SCALAR=1` vs auto dispatch is
//! checked by the CI matrix running this suite under both settings.

use anomex::core::{
    prefilter_indices, prefilter_indices_columns_range, prefilter_indices_columns_range_with,
    AnomalyExtractor, ExtractionConfig, PrefilterMode, PrefilterScratch, ShardedExtractor,
};
use anomex::detector::kernels::{
    self, active_backend, bin_batch_with, member_batch_with, mix_batch_with, KernelBackend,
    SmallValueSet, LANES,
};
use anomex::detector::{BinHasher, DetectorConfig, MetaData};
use anomex::netflow::{FlowColumns, FlowFeature};
use anomex::traffic::Scenario;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::num::NonZeroUsize;

const BACKENDS: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Avx2];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `mix_batch` ≡ `BinHasher::mix` per lane, on both backends, for
    /// arbitrary values and lengths (tails included).
    #[test]
    fn mix_batch_matches_bin_hasher(
        seed in any::<u64>(),
        values in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let reference = BinHasher::new(seed);
        let mut out = vec![0u64; values.len()];
        for backend in BACKENDS {
            mix_batch_with(backend, seed, &values, &mut out);
            for (k, &v) in values.iter().enumerate() {
                prop_assert_eq!(out[k], reference.mix(v), "{:?} lane {}", backend, k);
            }
        }
    }

    /// `bin_batch` ≡ `BinHasher::bin_of` per lane, on both backends, for
    /// arbitrary values, seeds, and bin counts.
    #[test]
    fn bin_batch_matches_bin_hasher(
        seed in any::<u64>(),
        bins in 1u32..=u32::MAX,
        values in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let reference = BinHasher::new(seed);
        let mut out = vec![0u32; values.len()];
        for backend in BACKENDS {
            bin_batch_with(backend, seed, bins, &values, &mut out);
            for (k, &v) in values.iter().enumerate() {
                prop_assert_eq!(out[k], reference.bin_of(v, bins), "{:?} lane {}", backend, k);
            }
        }
    }

    /// `member_batch` accumulates exactly `BTreeSet::contains` per lane,
    /// on both backends, for arbitrary small sets (1..=16 members) and
    /// values biased to collide with the set.
    #[test]
    fn member_batch_matches_btree_set(
        set_values in proptest::collection::btree_set(0u64..64, 1..=16),
        values in proptest::collection::vec(0u64..64, 0..100),
    ) {
        let reference: BTreeSet<u64> = set_values.clone();
        let small = SmallValueSet::new(set_values).expect("1..=16 members fit");
        for backend in BACKENDS {
            let mut hits = vec![0u8; values.len()];
            member_batch_with(backend, &small, &values, &mut hits);
            for (k, &v) in values.iter().enumerate() {
                prop_assert_eq!(
                    hits[k],
                    u8::from(reference.contains(&v)),
                    "{:?} lane {}", backend, k
                );
            }
        }
    }

    /// `SmallValueSet` refuses exactly the sets the pre-filter must keep
    /// on the `BTreeSet` fallback path: empty and >16 members.
    #[test]
    fn small_value_set_capacity_contract(
        set_values in proptest::collection::btree_set(any::<u64>(), 0..40),
    ) {
        let n = set_values.len();
        match SmallValueSet::new(set_values.iter().copied()) {
            Some(s) => {
                prop_assert!((1..=SmallValueSet::MAX).contains(&n));
                prop_assert_eq!(s.member_count(), n);
                for &v in &set_values {
                    prop_assert!(s.contains(v));
                }
            }
            None => prop_assert!(n == 0 || n > SmallValueSet::MAX),
        }
    }

    /// The kernel-backed columnar pre-filter ≡ the record-based scalar
    /// pre-filter on arbitrary flows, meta-data (small sets, large sets,
    /// several features), ranges, and both modes — and the scratch-reuse
    /// form returns the same thing again on a dirty scratch.
    #[test]
    fn columnar_prefilter_matches_record_reference(
        flows_seed in proptest::collection::vec((0u16..32, 1u32..20), 0..120),
        ports in proptest::collection::btree_set(0u64..32, 0..24),
        packets in proptest::collection::btree_set(1u64..20, 0..4),
        split in 0usize..121,
        union in any::<bool>(),
    ) {
        let flows: Vec<_> = flows_seed
            .iter()
            .map(|&(port, pkts)| sample_flow(port, pkts))
            .collect();
        let mut md = MetaData::new();
        for &p in &ports {
            md.insert(FlowFeature::DstPort, p);
        }
        for &p in &packets {
            md.insert(FlowFeature::Packets, p);
        }
        let mode = if union { PrefilterMode::Union } else { PrefilterMode::Intersection };
        let cols = FlowColumns::from_flows(&flows);
        let reference = prefilter_indices(&flows, &md, mode);
        let whole = prefilter_indices_columns_range(&cols, 0..flows.len(), &md, mode);
        prop_assert_eq!(&whole, &reference);
        // Split ranges concatenate to the whole (shard contract) and a
        // recycled dirty scratch changes nothing.
        let split = split.min(flows.len());
        let mut scratch = PrefilterScratch::default();
        let mut parts =
            prefilter_indices_columns_range_with(&cols, 0..split, &md, mode, &mut scratch);
        parts.extend(prefilter_indices_columns_range_with(
            &cols, split..flows.len(), &md, mode, &mut scratch,
        ));
        prop_assert_eq!(&parts, &reference);
    }
}

fn sample_flow(dst_port: u16, packets: u32) -> anomex::netflow::FlowRecord {
    use std::net::Ipv4Addr;
    anomex::netflow::FlowRecord::new(
        0,
        Ipv4Addr::new(10, 0, (dst_port >> 8) as u8, dst_port as u8),
        Ipv4Addr::new(10, 1, 0, 1),
        4000,
        dst_port,
        anomex::netflow::Protocol::Tcp,
    )
    .with_volume(packets, packets * 40)
}

/// When `ANOMEX_FORCE_SCALAR` pins the scalar path (the dedicated CI
/// leg), dispatch must resolve to it; without the override the resolved
/// backend is machine-dependent but stable.
#[test]
fn force_scalar_env_pins_backend() {
    let forced = std::env::var("ANOMEX_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
    if forced {
        assert_eq!(active_backend(), KernelBackend::Scalar);
    }
    assert_eq!(active_backend(), active_backend(), "dispatch is pinned");
}

/// Explicit tail shapes: every length from empty through three full
/// chunks, on both backends, against the scalar reference.
#[test]
fn all_tail_lengths_match() {
    let seed = 0x616e_6f6d_6578;
    let reference = BinHasher::new(seed);
    let set = SmallValueSet::new([1u64, 5, 9]).expect("3 members");
    for n in 0..=(3 * LANES) {
        let values: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x1234_5678_9abc))
            .collect();
        for backend in BACKENDS {
            let mut bins = vec![0u32; n];
            bin_batch_with(backend, seed, 1024, &values, &mut bins);
            let expect: Vec<u32> = values.iter().map(|&v| reference.bin_of(v, 1024)).collect();
            assert_eq!(bins, expect, "{backend:?} n={n}");
            let mut hits = vec![0u8; n];
            member_batch_with(backend, &set, &values, &mut hits);
            let expect: Vec<u8> = values
                .iter()
                .map(|&v| u8::from([1u64, 5, 9].contains(&v)))
                .collect();
            assert_eq!(hits, expect, "{backend:?} n={n}");
        }
    }
}

/// End-to-end bit-identity with the kernels active: the sharded columnar
/// engine (kernel-backed binning + pre-filtering) produces exactly what
/// the sequential record-based pipeline (pure scalar `BinHasher` path)
/// produces on the paper's Table 2 workload. Run under both the auto
/// and `ANOMEX_FORCE_SCALAR=1` CI legs, this pins kernel output ==
/// scalar output through the entire extraction stack.
#[test]
fn end_to_end_extraction_bit_identity() {
    let scenario = Scenario::small(2009);
    let config = ExtractionConfig {
        interval_ms: 60_000,
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        ..ExtractionConfig::default()
    };
    let mut sequential = AnomalyExtractor::try_new(config.clone()).expect("valid config");
    let mut sharded =
        ShardedExtractor::try_new(config, NonZeroUsize::new(4).expect("nonzero")).expect("valid");
    let backend = kernels::active_backend();
    let mut alarms = 0usize;
    for i in 0..scenario.interval_count().min(24) {
        let interval = scenario.generate(i);
        let seq = sequential.process_interval(&interval.flows);
        let par = sharded.process_interval(&interval.flows);
        assert_eq!(
            seq.observation.alarm, par.observation.alarm,
            "interval {i} ({backend:?})"
        );
        assert_eq!(seq.observation.metadata, par.observation.metadata);
        alarms += usize::from(seq.observation.alarm);
        match (&seq.extraction, &par.extraction) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.itemsets, y.itemsets, "interval {i} ({backend:?})");
                assert_eq!(x.suspicious_flows, y.suspicious_flows);
                assert_eq!(x.cost_reduction.to_bits(), y.cost_reduction.to_bits());
            }
            _ => panic!("extraction presence diverged at interval {i} ({backend:?})"),
        }
    }
    assert!(
        alarms > 0,
        "workload never alarmed — the case proves nothing"
    );
}
