//! Integration tests for the paper's §V / Table I extensions: top-k
//! mining, closed item-sets, and the entropy detector driving the same
//! extraction pipeline.

use anomex::core::{Engine, ExtractRequest};
use anomex::detector::EntropyDetector;
use anomex::mining::{filter_closed, mine_top_k};
use anomex::prelude::*;
use anomex::traffic::table2_workload;

/// Top-k mining over the Table II workload finds the same leading
/// item-sets as fixed-support mining, without the operator choosing s.
#[test]
fn topk_matches_fixed_support_leaders() {
    let w = table2_workload(2009, 0.05);
    let transactions = TransactionSet::from_flows(&w.flows);

    let fixed = MinerKind::FpGrowth.mine_maximal(&transactions, w.min_support);
    let mut fixed_ranked = fixed.clone();
    fixed_ranked.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.cmp(b)));

    let top = mine_top_k(&transactions, MinerKind::FpGrowth, 5, w.min_support);
    assert_eq!(top.itemsets.len(), 5);
    // The k leaders at the *same* support agree (top-k only lowers s when
    // needed).
    for (a, b) in top.itemsets.iter().zip(fixed_ranked.iter()) {
        assert_eq!(a, b);
        assert_eq!(a.support, b.support);
    }
    // The paper's workflow: the top item-sets pin the flood.
    let joined = top
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        joined.contains("dstPort=7000") || joined.contains("dstPort=80"),
        "{joined}"
    );
}

/// Closed item-sets are a lossless superset of maximal ones on real
/// pipeline output.
#[test]
fn closed_supersets_maximal_on_table2() {
    let w = table2_workload(2009, 0.05);
    let transactions = TransactionSet::from_flows(&w.flows);
    let all = MinerKind::Eclat.mine_all(&transactions, w.min_support);
    let closed = filter_closed(all.clone());
    let maximal = MinerKind::Eclat.mine_maximal(&transactions, w.min_support);

    for m in &maximal {
        assert!(closed.contains(m), "maximal {m} must be closed");
    }
    // Lossless: every frequent set's support is recoverable from closed.
    for s in &all {
        let recovered = closed
            .iter()
            .filter(|c| s.is_subset_of(c))
            .map(|c| c.support)
            .max()
            .expect("closed superset exists");
        assert_eq!(recovered, s.support, "support of {s} lost");
    }
}

/// The entropy detector (Table I family) catches the Table II flood via
/// an entropy drop and its meta-data extracts the same anomaly as the
/// histogram pipeline.
#[test]
fn entropy_detector_drives_extraction() {
    // Train on backgrounds without the flood (scaled-down port mix).
    let mut detector = EntropyDetector::new(FlowFeature::DstPort, 3.0, 6);
    for seed in 0..9 {
        // Background-only intervals: the web/backscatter/smtp parts of the
        // Table II mix, no port-7000 flood (tiny pseudo-interval).
        let w = table2_workload(seed, 0.01);
        let background: Vec<FlowRecord> = w
            .flows
            .iter()
            .filter(|f| f.dst_port != w.flood_port)
            .copied()
            .collect();
        let obs = detector.observe(&background);
        assert!(!obs.alarm, "training/quiet interval alarmed");
    }
    // Flood interval.
    let w = table2_workload(77, 0.01);
    let obs = detector.observe(&w.flows);
    assert!(obs.alarm, "the flood must disturb the port entropy");
    assert!(
        obs.values.contains(&u64::from(w.flood_port)),
        "{:?}",
        obs.values
    );

    let mut metadata = MetaData::new();
    metadata.insert_all(FlowFeature::DstPort, obs.values.iter().copied());
    let extraction = Engine::extract(
        &ExtractRequest::new(&w.flows, &metadata, w.min_support).miner(MinerKind::FpGrowth),
    );
    let joined = extraction
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        joined.contains("dstPort=7000"),
        "flood extracted via entropy meta-data:\n{joined}"
    );
    assert!(
        joined.contains(&format!("dstIP={}", w.victim)),
        "victim pinned:\n{joined}"
    );
}

/// Top-k, closed, and maximal agree on supports for the sets they share.
#[test]
fn extension_modes_are_mutually_consistent() {
    let w = table2_workload(3, 0.02);
    let tx = TransactionSet::from_flows(&w.flows);
    let maximal = MinerKind::FpGrowth.mine_maximal(&tx, w.min_support);
    let closed = filter_closed(MinerKind::FpGrowth.mine_all(&tx, w.min_support));
    let top = mine_top_k(&tx, MinerKind::FpGrowth, maximal.len(), w.min_support);
    for m in &maximal {
        let in_closed = closed.iter().find(|c| c == &m).expect("maximal ⊆ closed");
        assert_eq!(in_closed.support, m.support);
        if let Some(in_top) = top.itemsets.iter().find(|t| t == &m) {
            assert_eq!(in_top.support, m.support);
        }
    }
}
