//! Cross-crate property tests: invariants that span the flow substrate,
//! the detector, and the miner.

use anomex::core::{Engine, ExtractRequest, PrefilterMode};
use anomex::prelude::*;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        0u64..600_000,
        0u32..1 << 16,
        0u32..1 << 16,
        1024u16..60_000,
        proptest::sample::select(vec![80u16, 25, 445, 7000, 9022, 12345]),
        proptest::sample::select(vec![6u8, 17]),
        1u32..20,
    )
        .prop_map(|(start, src, dst, sport, dport, proto, pkts)| {
            FlowRecord::new(
                start,
                Ipv4Addr::from(0x0a00_0000 + src),
                Ipv4Addr::from(0x0b00_0000 + dst),
                sport,
                dport,
                Protocol::from_number(proto),
            )
            .with_volume(pkts, pkts * 48)
        })
}

fn arb_metadata() -> impl Strategy<Value = MetaData> {
    (
        proptest::collection::btree_set(
            proptest::sample::select(vec![80u64, 25, 445, 7000, 9022]),
            0..3,
        ),
        proptest::collection::btree_set(1u64..20, 0..3),
    )
        .prop_map(|(ports, packets)| {
            let mut md = MetaData::new();
            md.insert_all(FlowFeature::DstPort, ports);
            md.insert_all(FlowFeature::Packets, packets);
            md
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every extracted item-set is genuinely frequent within the
    /// suspicious set, and every item of every item-set matches at least
    /// `support` suspicious flows end-to-end.
    #[test]
    fn extracted_itemsets_are_frequent(
        flows in proptest::collection::vec(arb_flow(), 50..400),
        md in arb_metadata(),
        support in 5u64..40,
    ) {
        let ex = Engine::extract(&ExtractRequest::new(&flows, &md, support));
        let suspicious = anomex::core::prefilter(&flows, &md, PrefilterMode::Union);
        prop_assert_eq!(ex.suspicious_flows, suspicious.len());
        let tx = TransactionSet::from_flows(&suspicious);
        for set in &ex.itemsets {
            prop_assert!(set.support >= support);
            prop_assert_eq!(set.support, tx.support_of(set.items()), "support of {}", set);
        }
    }

    /// Miners are interchangeable at the pipeline level (not just on raw
    /// transaction sets).
    #[test]
    fn pipeline_miners_agree(
        flows in proptest::collection::vec(arb_flow(), 50..300),
        md in arb_metadata(),
        support in 3u64..30,
    ) {
        let a = Engine::extract(&ExtractRequest::new(&flows, &md, support).miner(MinerKind::Apriori));
        let f = Engine::extract(&ExtractRequest::new(&flows, &md, support).miner(MinerKind::FpGrowth));
        let e = Engine::extract(&ExtractRequest::new(&flows, &md, support).miner(MinerKind::Eclat));
        prop_assert_eq!(&a.itemsets, &f.itemsets);
        prop_assert_eq!(&f.itemsets, &e.itemsets);
    }

    /// Suspicious flows always match the meta-data; rejected flows never
    /// do (union mode).
    #[test]
    fn prefilter_partition_correctness(
        flows in proptest::collection::vec(arb_flow(), 1..300),
        md in arb_metadata(),
    ) {
        let idx = anomex::core::prefilter_indices(&flows, &md, PrefilterMode::Union);
        for (i, flow) in flows.iter().enumerate() {
            let kept = idx.contains(&i);
            prop_assert_eq!(kept, md.matches_any(flow));
        }
    }

    /// Raising the minimum support keeps extractions consistent: every
    /// item-set extracted at the high support is frequent at the low one,
    /// and is a subset of (or equal to) some low-support maximal set.
    /// (Note the *count* of maximal sets is NOT monotone — a long maximal
    /// set can split into several shorter ones as support rises.)
    #[test]
    fn pipeline_support_consistency(
        flows in proptest::collection::vec(arb_flow(), 50..300),
        md in arb_metadata(),
        s_lo in 3u64..15,
    ) {
        let s_hi = s_lo * 2;
        let lo = Engine::extract(&ExtractRequest::new(&flows, &md, s_lo).miner(MinerKind::Eclat));
        let hi = Engine::extract(&ExtractRequest::new(&flows, &md, s_hi).miner(MinerKind::Eclat));
        let suspicious = anomex::core::prefilter(&flows, &md, PrefilterMode::Union);
        let tx = TransactionSet::from_flows(&suspicious);
        for set in &hi.itemsets {
            prop_assert!(tx.support_of(set.items()) >= s_lo);
            prop_assert!(
                lo.itemsets.iter().any(|big| set.is_subset_of(big)),
                "{} not covered by any low-support maximal set", set
            );
        }
    }

    /// Encode→decode through NetFlow v5 never changes what the pipeline
    /// sees (property-level version of the integration test).
    #[test]
    fn v5_transparent_to_mining(
        flows in proptest::collection::vec(arb_flow(), 1..200),
        support in 2u64..20,
    ) {
        use anomex::netflow::v5::{V5Collector, V5Exporter};
        let mut exporter = V5Exporter::new();
        let mut collector = V5Collector::new();
        for d in exporter.export(&flows) {
            collector.ingest(&d).unwrap();
        }
        let decoded = collector.into_flows();
        let direct = MinerKind::FpGrowth.mine_maximal(&TransactionSet::from_flows(&flows), support);
        let wired = MinerKind::FpGrowth.mine_maximal(&TransactionSet::from_flows(&decoded), support);
        prop_assert_eq!(direct, wired);
    }
}
