//! End-to-end integration tests: every anomaly class, injected into a
//! realistic background, must be detected by the histogram detectors and
//! extracted as item-sets that pin its root cause.

use std::net::Ipv4Addr;
use std::num::NonZeroUsize;

use anomex::core::{render_report, StreamingExtractor};
use anomex::mining::RuleConfig;
use anomex::prelude::*;
use anomex::traffic::{BackgroundConfig, EventId, EventParams, ScenarioConfig};

/// Build a one-event scenario over a quiet background.
fn one_event_scenario(params: EventParams, flows_per_interval: u64, seed: u64) -> Scenario {
    let background = BackgroundConfig {
        flows_per_interval: 4000,
        diurnal: false,
        noise: 0.03,
        ..BackgroundConfig::default()
    };
    let config = ScenarioConfig {
        seed,
        intervals: 30,
        interval_ms: 60_000,
        background,
    };
    let events = vec![anomex::traffic::EventSpec {
        id: EventId(0),
        start_interval: 24,
        duration: 1,
        flows_per_interval,
        params,
    }];
    Scenario::new(config, events)
}

fn pipeline_config() -> ExtractionConfig {
    ExtractionConfig {
        interval_ms: 60_000,
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 900,
        ..ExtractionConfig::default()
    }
}

/// Drive the scenario through the pipeline; return the extraction at the
/// event interval (test fails loudly if there is none).
fn extract_event(scenario: &Scenario) -> Extraction {
    let mut pipeline = AnomalyExtractor::try_new(pipeline_config()).unwrap();
    let mut hit = None;
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        let outcome = pipeline.process_interval(&interval.flows);
        if i == 24 {
            assert!(
                outcome.observation.alarm,
                "the detector bank must alarm at the event interval"
            );
            hit = outcome.extraction;
        }
    }
    hit.expect("the alarmed interval must produce an extraction")
}

fn assert_extracts(extraction: &Extraction, needles: &[&str]) {
    let joined = extraction
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    for needle in needles {
        assert!(
            joined.contains(needle),
            "expected {needle} in the extracted item-sets:\n{}",
            render_report(extraction)
        );
    }
}

#[test]
fn flooding_is_extracted() {
    let scenario = one_event_scenario(
        EventParams::Flooding {
            sources: vec![Ipv4Addr::new(91, 1, 1, 1), Ipv4Addr::new(91, 1, 1, 2)],
            victim: Ipv4Addr::new(10, 3, 0, 7),
            port: 7000,
        },
        3000,
        101,
    );
    let ex = extract_event(&scenario);
    assert_extracts(&ex, &["dstPort=7000", "dstIP=10.3.0.7"]);
}

/// Golden rule-layer test: on the seeded flood, the top-ranked
/// association rule must implicate the attack (the flood item-set on
/// one side, the victim port on the other) — and the streaming path
/// must reproduce the batch rule report byte for byte.
#[test]
fn flood_rules_rank_the_attack_first_in_batch_and_stream() {
    let scenario = one_event_scenario(
        EventParams::Flooding {
            sources: vec![Ipv4Addr::new(91, 1, 1, 1), Ipv4Addr::new(91, 1, 1, 2)],
            victim: Ipv4Addr::new(10, 3, 0, 7),
            port: 7000,
        },
        3000,
        101,
    );
    let config = ExtractionConfig {
        rules: Some(RuleConfig::default()),
        ..pipeline_config()
    };

    // Batch path.
    let mut pipeline = AnomalyExtractor::try_new(config.clone()).unwrap();
    let mut batch_ex = None;
    for i in 0..scenario.interval_count() {
        let outcome = pipeline.process_interval(&scenario.generate(i).flows);
        if i == 24 {
            batch_ex = outcome.extraction;
        }
    }
    let batch_ex = batch_ex.expect("the flood interval must extract");
    let rules = batch_ex.rules.as_ref().expect("the rule layer is on");
    assert!(!rules.is_empty(), "the flood must yield rules");
    let top = rules.rules[0].rule.to_string();
    assert!(
        top.contains("dstPort=7000") && top.contains("dstIP=10.3.0.7"),
        "the top-ranked rule must implicate the attack, got {top}\n{}",
        render_report(&batch_ex)
    );
    for lower in &rules.rules[1..] {
        assert!(
            rules.rules[0].score.total_cmp(&lower.score).is_ge(),
            "ranking must put the attack rule first"
        );
    }

    // Streaming path: same config, same flows, byte-identical report.
    let mut stream = StreamingExtractor::try_new(config, NonZeroUsize::new(2).unwrap(), 0).unwrap();
    let mut stream_ex = None;
    let mut events = Vec::new();
    for i in 0..scenario.interval_count() {
        for flow in scenario.generate(i).flows {
            events.extend(stream.push(flow));
        }
    }
    let (tail, _) = stream.finish();
    events.extend(tail);
    for event in events {
        if event.index == 24 {
            stream_ex = event.outcome.extraction;
        }
    }
    let stream_ex = stream_ex.expect("the streamed flood interval must extract");
    assert_eq!(
        render_report(&stream_ex),
        render_report(&batch_ex),
        "streaming rule report diverged from batch"
    );
}

#[test]
fn ddos_is_extracted() {
    let scenario = one_event_scenario(
        EventParams::DDoS {
            victim: Ipv4Addr::new(10, 5, 0, 80),
            port: 80,
            attackers: 900,
        },
        3500,
        102,
    );
    let ex = extract_event(&scenario);
    // Many sources: the victim is pinned; no single source is frequent.
    assert_extracts(&ex, &["dstIP=10.5.0.80"]);
    let per_source = ex
        .itemsets
        .iter()
        .filter(|s| {
            s.to_string().contains("srcIP=45.") && s.to_string().contains("dstIP=10.5.0.80")
        })
        .count();
    assert_eq!(
        per_source, 0,
        "no attacking bot should be frequent on its own"
    );
}

#[test]
fn scanning_is_extracted() {
    let scenario = one_event_scenario(
        EventParams::Scanning {
            scanner: Ipv4Addr::new(66, 6, 6, 6),
            port: 445,
        },
        2500,
        103,
    );
    let ex = extract_event(&scenario);
    assert_extracts(&ex, &["srcIP=66.6.6.6", "dstPort=445"]);
}

#[test]
fn backscatter_is_extracted() {
    let scenario = one_event_scenario(EventParams::Backscatter { port: 9022 }, 2500, 104);
    let ex = extract_event(&scenario);
    assert_extracts(&ex, &["dstPort=9022", "#packets=1"]);
}

#[test]
fn spam_is_extracted() {
    let scenario = one_event_scenario(
        EventParams::Spam {
            servers: vec![Ipv4Addr::new(10, 8, 0, 25), Ipv4Addr::new(10, 8, 1, 25)],
            senders: 80,
        },
        2500,
        105,
    );
    let ex = extract_event(&scenario);
    assert_extracts(&ex, &["dstPort=25"]);
}

#[test]
fn network_experiment_is_extracted() {
    let scenario = one_event_scenario(
        EventParams::NetworkExperiment {
            node: Ipv4Addr::new(10, 12, 0, 42),
            src_port: 33434,
            dst_port: 33435,
        },
        2500,
        106,
    );
    let ex = extract_event(&scenario);
    assert_extracts(&ex, &["srcIP=10.12.0.42", "srcPort=33434", "dstPort=33435"]);
}

#[test]
fn unknown_exchange_is_extracted() {
    let scenario = one_event_scenario(
        EventParams::Unknown {
            a: Ipv4Addr::new(10, 13, 0, 1),
            b: Ipv4Addr::new(185, 44, 0, 9),
        },
        2500,
        107,
    );
    let ex = extract_event(&scenario);
    // Either direction of the exchange may dominate the item-sets.
    let joined = ex
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        joined.contains("10.13.0.1") && joined.contains("185.44.0.9"),
        "both endpoints pinned:\n{joined}"
    );
}

/// The extraction pipeline is deterministic: same scenario, same config,
/// same item-sets.
#[test]
fn extraction_is_deterministic() {
    let scenario = one_event_scenario(
        EventParams::Scanning {
            scanner: Ipv4Addr::new(66, 6, 6, 6),
            port: 23,
        },
        2500,
        108,
    );
    let a = extract_event(&scenario);
    let b = extract_event(&scenario);
    assert_eq!(a.itemsets, b.itemsets);
    assert_eq!(a.suspicious_flows, b.suspicious_flows);
}
