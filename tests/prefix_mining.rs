//! Integration: the §III-D multilevel (prefix) extension. A distributed
//! subnet scan has no frequent source or destination IP, so canonical
//! width-7 mining cannot pin the target network; prefix-extended width-9
//! transactions surface it as `{dstNet16=…, dstPort=…}`.

use std::net::Ipv4Addr;

use anomex::core::{Engine, ExtractRequest, TransactionMode};
use anomex::prelude::*;
use anomex::traffic::inject::dscan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distributed scan into 10.16.0.0/16 plus diffuse background.
fn workload() -> Vec<FlowRecord> {
    let mut rng = StdRng::seed_from_u64(99);
    let mut flows = dscan::generate(
        Ipv4Addr::new(10, 16, 0, 0),
        445,
        900,
        3000,
        0,
        60_000,
        &mut rng,
    );
    // Background across many /16s so no benign prefix dominates.
    for i in 0..6000u32 {
        flows.push(
            FlowRecord::new(
                u64::from(i) * 10,
                Ipv4Addr::from(rng.random::<u32>() | 0x2000_0000),
                Ipv4Addr::from(0x0a00_0000 | (rng.random::<u32>() & 0x00FF_FFFF)),
                rng.random_range(1024..60_000),
                [80u16, 443, 25, 53][rng.random_range(0..4usize)],
                Protocol::Tcp,
            )
            .with_volume(rng.random_range(1..20), 500),
        );
    }
    flows
}

fn metadata() -> MetaData {
    // The dstPort detector flags 445; the (hypothetical) prefix detector
    // flags the scanned range.
    let mut md = MetaData::new();
    md.insert(FlowFeature::DstPort, 445);
    md
}

#[test]
fn canonical_mining_cannot_pin_the_subnet() {
    let flows = workload();
    let ex =
        Engine::extract(&ExtractRequest::new(&flows, &metadata(), 500).miner(MinerKind::FpGrowth));
    let joined = ex
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    // The port and flow shape are found...
    assert!(joined.contains("dstPort=445"), "{joined}");
    // ...but nothing identifies the target network.
    assert!(
        !joined.contains("dstIP="),
        "no single host is frequent:\n{joined}"
    );
    assert!(
        !joined.contains("Net16"),
        "canonical transactions have no prefix items"
    );
}

#[test]
fn prefix_mining_pins_the_scanned_range() {
    let flows = workload();
    let ex = Engine::extract(
        &ExtractRequest::new(&flows, &metadata(), 500)
            .transactions(TransactionMode::WithPrefixes)
            .miner(MinerKind::FpGrowth),
    );
    let joined = ex
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        joined.contains("dstNet16=10.16.0.0/16"),
        "the scanned /16 must be pinned:\n{joined}"
    );
    // The top item-set couples the range with the scanned port.
    let top = ex.itemsets.iter().max_by_key(|s| s.support).unwrap();
    let top_s = top.to_string();
    assert!(
        top_s.contains("dstNet16=10.16.0.0/16") && top_s.contains("dstPort=445"),
        "{top_s}"
    );
    assert_eq!(
        top.support, 3000,
        "every probe matches the range+port pattern"
    );
}

#[test]
fn miners_agree_in_prefix_mode() {
    let flows = workload();
    let md = metadata();
    let prefix_request = |miner: MinerKind| {
        Engine::extract(
            &ExtractRequest::new(&flows, &md, 500)
                .transactions(TransactionMode::WithPrefixes)
                .miner(miner),
        )
    };
    let a = prefix_request(MinerKind::Apriori);
    let f = prefix_request(MinerKind::FpGrowth);
    let e = prefix_request(MinerKind::Eclat);
    assert_eq!(a.itemsets, f.itemsets);
    assert_eq!(f.itemsets, e.itemsets);
}

#[test]
fn prefix_detector_feature_works_in_the_bank() {
    // The detector bank is feature-generic: monitoring DstNet16 makes the
    // subnet scan visible as a *detection* too, not just in mining.
    use anomex::detector::{DetectorBank, DetectorConfig};
    let mut config = DetectorConfig {
        training_intervals: 8,
        ..DetectorConfig::default()
    };
    config.features.push(FlowFeature::DstNet16);

    let mut bank = DetectorBank::new(&config);
    let mut rng = StdRng::seed_from_u64(5);
    // Train on diffuse background.
    let background = |rng: &mut StdRng| -> Vec<FlowRecord> {
        (0..3000u32)
            .map(|i| {
                FlowRecord::new(
                    u64::from(i),
                    Ipv4Addr::from(rng.random::<u32>() | 0x2000_0000),
                    Ipv4Addr::from(0x0a00_0000 | (rng.random::<u32>() & 0x00FF_FFFF)),
                    rng.random_range(1024..60_000),
                    [80u16, 443, 25][rng.random_range(0..3usize)],
                    Protocol::Tcp,
                )
                .with_volume(rng.random_range(1..20), 500)
            })
            .collect()
    };
    // Warm-up + training (stray alarms on the noisy i.i.d. background are
    // possible right after training and are not what this test checks).
    for _ in 0..11 {
        let _ = bank.observe(&background(&mut rng));
    }
    // Scan interval.
    let mut flows = background(&mut rng);
    flows.extend(dscan::generate(
        Ipv4Addr::new(10, 16, 0, 0),
        445,
        900,
        2500,
        0,
        60_000,
        &mut rng,
    ));
    let obs = bank.observe(&flows);
    assert!(obs.alarm, "the subnet scan must alarm");
    let net_alarmed = obs
        .features
        .iter()
        .any(|f| f.feature == FlowFeature::DstNet16 && f.alarm);
    assert!(
        net_alarmed,
        "the prefix detector must be among the alarming features"
    );
    // And the voted meta-data contains the scanned prefix value.
    let prefix_value = u64::from(u32::from(Ipv4Addr::new(10, 16, 0, 0)) >> 16);
    assert!(obs
        .metadata
        .values_for(FlowFeature::DstNet16)
        .is_some_and(|v| v.contains(&prefix_value)));
}
