//! The paper's central pre-filtering claim (§II-A): for multi-stage
//! anomalies the union of the meta-data extracts the event while the
//! intersection misses it entirely.

use std::net::Ipv4Addr;

use anomex::core::{Engine, ExtractRequest, PrefilterMode};
use anomex::prelude::*;

/// A Sasser-like multi-stage footprint: scan (port 445, 1 packet),
/// backdoor (port 9996), download (12 packets) — plus web noise.
fn multistage_trace() -> Vec<FlowRecord> {
    let infected = Ipv4Addr::new(10, 5, 5, 5);
    let mut flows = Vec::new();
    for i in 0..2000u32 {
        flows.push(
            FlowRecord::new(
                u64::from(i),
                infected,
                Ipv4Addr::from(0x0a10_0000 + i),
                (1024 + i % 60_000) as u16,
                445,
                Protocol::Tcp,
            )
            .with_volume(1, 40),
        );
    }
    for i in 0..800u32 {
        flows.push(
            FlowRecord::new(
                30_000 + u64::from(i),
                infected,
                Ipv4Addr::from(0x0a10_0000 + i * 2),
                (1024 + i % 60_000) as u16,
                9996,
                Protocol::Tcp,
            )
            .with_volume(6, 480),
        );
    }
    for i in 0..800u32 {
        flows.push(
            FlowRecord::new(
                60_000 + u64::from(i),
                Ipv4Addr::from(0x0a10_0000 + i * 2),
                infected,
                (1024 + i % 60_000) as u16,
                5554,
                Protocol::Tcp,
            )
            .with_volume(12, 16_384),
        );
    }
    for i in 0..8000u32 {
        flows.push(
            FlowRecord::new(
                u64::from(i),
                Ipv4Addr::from(0x0a00_0000 + (i % 512)),
                Ipv4Addr::from(0x5000_0000 + i),
                (1024 + i % 60_000) as u16,
                80,
                Protocol::Tcp,
            )
            .with_volume(3 + (i % 20), 500 + i % 4000),
        );
    }
    flows
}

fn multistage_metadata() -> MetaData {
    let mut md = MetaData::new();
    md.insert(FlowFeature::DstPort, 445);
    md.insert(FlowFeature::DstPort, 9996);
    md.insert(FlowFeature::Packets, 12);
    md
}

#[test]
fn intersection_misses_multistage_anomalies() {
    let flows = multistage_trace();
    let md = multistage_metadata();
    let ex = Engine::extract(
        &ExtractRequest::new(&flows, &md, 400).prefilter(PrefilterMode::Intersection),
    );
    assert_eq!(
        ex.suspicious_flows, 0,
        "no flow carries all three stage markers"
    );
    assert!(ex.itemsets.is_empty(), "the anomaly is missed entirely");
}

#[test]
fn union_extracts_every_stage() {
    let flows = multistage_trace();
    let md = multistage_metadata();
    let ex = Engine::extract(&ExtractRequest::new(&flows, &md, 400));
    // 3600 worm flows, plus the benign web flows that happen to have
    // 12 packets (8000 / 20 = 400) — flow-size meta-data inevitably drags
    // in some normal traffic, which is what mining then sorts out.
    assert_eq!(ex.suspicious_flows, 3600 + 400);
    let joined = ex
        .itemsets
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(joined.contains("dstPort=445"), "scan stage:\n{joined}");
    assert!(joined.contains("dstPort=9996"), "backdoor stage:\n{joined}");
    assert!(joined.contains("#packets=12"), "download stage:\n{joined}");
    // The infected host is pinned in the item-sets.
    assert!(
        joined.contains("10.5.5.5"),
        "infected host pinned:\n{joined}"
    );
}

#[test]
fn union_prefilter_is_superset_of_intersection() {
    let flows = multistage_trace();
    let md = multistage_metadata();
    let union = anomex::core::prefilter_indices(&flows, &md, PrefilterMode::Union);
    let inter = anomex::core::prefilter_indices(&flows, &md, PrefilterMode::Intersection);
    for i in &inter {
        assert!(union.contains(i));
    }
    assert!(union.len() >= inter.len());
}

/// With single-stage meta-data both modes agree — intersection only hurts
/// when meta-data spans features/stages.
#[test]
fn single_feature_metadata_modes_agree() {
    let flows = multistage_trace();
    let mut md = MetaData::new();
    md.insert(FlowFeature::DstPort, 445);
    let u = Engine::extract(&ExtractRequest::new(&flows, &md, 400).miner(MinerKind::FpGrowth));
    let i = Engine::extract(
        &ExtractRequest::new(&flows, &md, 400)
            .prefilter(PrefilterMode::Intersection)
            .miner(MinerKind::FpGrowth),
    );
    assert_eq!(u.suspicious_flows, i.suspicious_flows);
    assert_eq!(u.itemsets, i.itemsets);
}
