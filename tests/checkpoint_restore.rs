//! Durability suite: kill-and-resume must be **bit-identical** to an
//! uninterrupted run — the load-bearing contract of the checkpoint
//! subsystem. A checkpoint serializes the complete online state
//! (detector baselines and histograms, assembler watermarks and the
//! in-progress window, drop counters, stream counters), so a process
//! that dies after a checkpoint and restores from it must emit exactly
//! the events the never-killed process would have emitted, for every
//! miner, shard count (restore may even change it — output is
//! shard-invariant), and multi-source interleaving. Alongside the
//! resume property, the suite pins the robustness half of the contract:
//! hostile checkpoint files fail with a typed [`RestoreError`], never a
//! panic, and live reconfiguration drops no flows.

use anomex::netflow::snapshot::{
    read_checkpoint, write_checkpoint, RestoreError, CHECKPOINT_MAGIC,
};
use anomex::prelude::*;
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::path::PathBuf;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn config_for(scenario: &Scenario, miner: MinerKind) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms: scenario.interval_ms(),
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        miner,
        ..ExtractionConfig::default()
    }
}

/// Assert two stream events are the same to the bit (indices, flow
/// counts, alarms, voted meta-data, KL series, and extractions).
fn assert_events_identical(a: &StreamEvent, b: &StreamEvent, context: &str) {
    assert_eq!(a.index, b.index, "{context}: interval index diverged");
    assert_eq!(a.flows, b.flows, "{context}: flow count diverged");
    assert_eq!(a.alarmed(), b.alarmed(), "{context}: alarm diverged");
    assert_eq!(
        a.outcome.observation.metadata, b.outcome.observation.metadata,
        "{context}: meta-data diverged"
    );
    for (x, y) in a
        .outcome
        .observation
        .features
        .iter()
        .zip(&b.outcome.observation.features)
    {
        for (cx, cy) in x.clones.iter().zip(&y.clones) {
            assert_eq!(
                cx.kl.map(f64::to_bits),
                cy.kl.map(f64::to_bits),
                "{context}: KL bits diverged"
            );
        }
    }
    match (&a.outcome.extraction, &b.outcome.extraction) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.itemsets, y.itemsets, "{context}: itemsets diverged");
            assert_eq!(
                x.cost_reduction.to_bits(),
                y.cost_reduction.to_bits(),
                "{context}: cost reduction diverged"
            );
        }
        _ => panic!("{context}: extraction presence diverged"),
    }
}

proptest! {
    // Whole-scenario runs (training + detection), so few, heavy cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill-and-resume: stream a scenario, checkpoint at an arbitrary
    /// flow position (mid-window included), drop the engine (the
    /// simulated crash), restore — possibly onto a *different* shard
    /// count — and continue. Events and summary must be bit-identical
    /// to the uninterrupted run, for every miner.
    #[test]
    fn kill_and_resume_is_bit_identical(
        seed in 0u64..1_000,
        cut_pct in 20u64..80,
        shards in 1usize..=4,
        resume_shards in 1usize..=4,
        miner_idx in 0usize..3,
    ) {
        let scenario = Scenario::small(seed);
        let miner = MinerKind::ALL[miner_idx];
        let intervals = scenario.interval_count().min(22);
        let flows: Vec<FlowRecord> = (0..intervals)
            .flat_map(|i| scenario.generate(i).flows)
            .collect();
        let cut = (flows.len() as u64 * cut_pct / 100) as usize;

        let mut reference =
            StreamingExtractor::try_new(config_for(&scenario, miner), nz(shards), 0).unwrap();
        let mut ref_events = Vec::new();
        let mut interrupted =
            StreamingExtractor::try_new(config_for(&scenario, miner), nz(shards), 0).unwrap();
        let mut resumed_events = Vec::new();
        for (i, flow) in flows.iter().enumerate() {
            ref_events.extend(reference.push(*flow));
            if i < cut {
                resumed_events.extend(interrupted.push(*flow));
            }
        }
        let (tail, payload) = interrupted.checkpoint();
        resumed_events.extend(tail);
        drop(interrupted); // the crash: only the payload survives
        let mut resumed =
            StreamingExtractor::restore(&payload, Some(nz(resume_shards))).unwrap();
        for flow in &flows[cut..] {
            resumed_events.extend(resumed.push(*flow));
        }
        let (tail, ref_summary) = reference.finish();
        ref_events.extend(tail);
        let (tail, resumed_summary) = resumed.finish();
        resumed_events.extend(tail);

        prop_assert_eq!(ref_summary.intervals, resumed_summary.intervals);
        prop_assert_eq!(ref_summary.alarms, resumed_summary.alarms);
        prop_assert_eq!(ref_summary.extractions, resumed_summary.extractions);
        prop_assert_eq!(ref_summary.total_flows, resumed_summary.total_flows);
        prop_assert_eq!(ref_summary.late_flows, resumed_summary.late_flows);
        prop_assert_eq!(ref_summary.trained, resumed_summary.trained);
        prop_assert_eq!(ref_events.len(), resumed_events.len());
        for (a, b) in ref_events.iter().zip(&resumed_events) {
            assert_events_identical(
                a,
                b,
                &format!("seed={seed} miner={miner} cut={cut} shards={shards}->{resume_shards}"),
            );
        }
    }
}

/// Multi-source kill-and-resume under skew: one exporter runs a full
/// interval ahead of the other, the checkpoint lands mid-grid (lane
/// watermarks apart, windows half-assembled), and the restored engine
/// still emits exactly what the uninterrupted run emits.
#[test]
fn multi_source_resume_survives_skewed_lanes() {
    let scenario = Scenario::small(17);
    let intervals = scenario.interval_count().min(20);
    let specs = [SourceSpec::new(0u32, 0), SourceSpec::new(1u32, 0)];
    let config = || config_for(&scenario, MinerKind::FpGrowth);

    // Split each interval between the sources, then interleave with
    // source 1 a whole interval ahead of source 0.
    let mut pushes: Vec<(SourceId, FlowRecord)> = Vec::new();
    let mut lagging: Vec<Vec<FlowRecord>> = Vec::new();
    for i in 0..intervals {
        let flows = scenario.generate(i).flows;
        let half = flows.len() / 2;
        lagging.push(flows[..half].to_vec());
        pushes.extend(flows[half..].iter().map(|f| (SourceId(1), *f)));
        if i >= 1 {
            let behind = std::mem::take(&mut lagging[(i - 1) as usize]);
            pushes.extend(behind.into_iter().map(|f| (SourceId(0), f)));
        }
    }
    if let Some(last) = lagging.last_mut() {
        let behind = std::mem::take(last);
        pushes.extend(behind.into_iter().map(|f| (SourceId(0), f)));
    }
    let cut = pushes.len() / 2;

    let mut reference = MultiSourceExtractor::try_new(config(), nz(2), &specs, None).unwrap();
    let mut ref_events = Vec::new();
    let mut interrupted = MultiSourceExtractor::try_new(config(), nz(2), &specs, None).unwrap();
    let mut resumed_events = Vec::new();
    for (i, (source, flow)) in pushes.iter().enumerate() {
        ref_events.extend(reference.push(*source, *flow));
        if i < cut {
            resumed_events.extend(interrupted.push(*source, *flow));
        }
    }
    let (tail, payload) = interrupted.checkpoint();
    resumed_events.extend(tail);
    drop(interrupted);
    let mut resumed = MultiSourceExtractor::restore(&payload, Some(nz(1))).unwrap();
    for (source, flow) in &pushes[cut..] {
        resumed_events.extend(resumed.push(*source, *flow));
    }
    let (tail, ref_summary) = reference.finish();
    ref_events.extend(tail);
    let (tail, resumed_summary) = resumed.finish();
    resumed_events.extend(tail);

    assert_eq!(ref_summary.intervals, resumed_summary.intervals);
    assert_eq!(ref_summary.alarms, resumed_summary.alarms);
    assert_eq!(ref_summary.extractions, resumed_summary.extractions);
    assert_eq!(ref_summary.total_flows, resumed_summary.total_flows);
    assert_eq!(ref_summary.dropped_flows, resumed_summary.dropped_flows);
    assert_eq!(ref_summary.sources, resumed_summary.sources);
    assert_eq!(ref_events.len(), resumed_events.len());
    for (a, b) in ref_events.iter().zip(&resumed_events) {
        assert_eq!(
            a.source_flows, b.source_flows,
            "per-source weights diverged"
        );
        assert_events_identical(&a.event, &b.event, "multi-source skew");
    }
}

/// A fresh payload restores; every corruption mode fails with the right
/// typed [`RestoreError`] — and none of them panics.
#[test]
fn checkpoint_files_reject_corruption_with_typed_errors() {
    let dir = std::env::temp_dir().join(format!("anomex-restore-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| -> PathBuf { dir.join(name) };

    let scenario = Scenario::small(3);
    let mut stream =
        StreamingExtractor::try_new(config_for(&scenario, MinerKind::Apriori), nz(1), 0).unwrap();
    for i in 0..3 {
        for flow in scenario.generate(i).flows {
            let _ = stream.push(flow);
        }
    }
    let (_, payload) = stream.checkpoint();

    // Round trip through the atomic file layer.
    let good = path("good.ckpt");
    write_checkpoint(&good, &payload).unwrap();
    let bytes = read_checkpoint(&good).unwrap();
    assert_eq!(bytes, payload);
    assert!(StreamingExtractor::restore(&bytes, None).is_ok());

    let raw = std::fs::read(&good).unwrap();

    // Truncated: file ends inside the declared payload.
    let truncated = path("truncated.ckpt");
    std::fs::write(&truncated, &raw[..raw.len() - 7]).unwrap();
    assert!(matches!(
        read_checkpoint(&truncated),
        Err(RestoreError::Truncated)
    ));

    // Bad magic: not a checkpoint at all.
    let mut evil = raw.clone();
    evil[..CHECKPOINT_MAGIC.len()].copy_from_slice(b"NOTACKPT");
    let bad_magic = path("bad-magic.ckpt");
    std::fs::write(&bad_magic, &evil).unwrap();
    assert!(matches!(
        read_checkpoint(&bad_magic),
        Err(RestoreError::BadMagic)
    ));

    // Version bump: written by a future format.
    let mut evil = raw.clone();
    evil[CHECKPOINT_MAGIC.len()] = 0xfe; // version u32, little-endian
    let bad_version = path("bad-version.ckpt");
    std::fs::write(&bad_version, &evil).unwrap();
    assert!(matches!(
        read_checkpoint(&bad_version),
        Err(RestoreError::UnsupportedVersion { found: 0xfe })
    ));

    // Payload bit-flip: the checksum catches it.
    let mut evil = raw.clone();
    let last = evil.len() - 1;
    evil[last] ^= 0xff;
    let flipped = path("flipped.ckpt");
    std::fs::write(&flipped, &evil).unwrap();
    assert!(matches!(
        read_checkpoint(&flipped),
        Err(RestoreError::ChecksumMismatch)
    ));

    // Missing file: an I/O error, not a panic (the CLI maps this to a
    // cold start when `--resume` finds no checkpoint).
    assert!(matches!(
        read_checkpoint(&path("never-written.ckpt")),
        Err(RestoreError::Io(_))
    ));

    // A framed-but-gibberish payload must fail restore, not panic.
    let garbage: Vec<u8> = (0..payload.len()).map(|i| (i * 31) as u8).collect();
    let framed = path("garbage.ckpt");
    write_checkpoint(&framed, &garbage).unwrap();
    let garbage = read_checkpoint(&framed).unwrap();
    assert!(StreamingExtractor::restore(&garbage, None).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

/// Live reconfiguration through the facade: applied at an interval
/// boundary, audited in the summary, and — the acceptance criterion —
/// dropping zero flows (`late_flows + pre_origin_flows == 0` while
/// every pushed flow lands in a processed interval).
#[test]
fn reconfiguration_is_audited_and_drops_nothing() {
    let scenario = Scenario::small(29);
    let intervals = scenario.interval_count().min(16);
    let mut stream =
        StreamingExtractor::try_new(config_for(&scenario, MinerKind::Eclat), nz(2), 0).unwrap();
    let mut events = Vec::new();
    let mut pushed = 0u64;
    for i in 0..intervals {
        for flow in scenario.generate(i).flows {
            events.extend(stream.push(flow));
            pushed += 1;
        }
        if i == intervals / 2 {
            // Tighten support and move the detection threshold mid-run.
            let (more, verdict) = stream.reconfigure(ReconfigRequest {
                min_support: Some(600),
                alpha: Some(2.0),
                ..ReconfigRequest::default()
            });
            events.extend(more);
            verdict.unwrap();
            // An invalid request is rejected, audited, and changes nothing.
            let (more, verdict) = stream.reconfigure(ReconfigRequest {
                min_support: Some(0),
                ..ReconfigRequest::default()
            });
            events.extend(more);
            assert!(verdict.is_err());
        }
    }
    let (tail, summary) = stream.finish();
    events.extend(tail);
    assert_eq!(summary.reconfigs_applied, 1);
    assert_eq!(summary.reconfigs_rejected, 1);
    assert_eq!(summary.total_flows, pushed);
    assert_eq!(
        summary.late_flows + summary.pre_origin_flows,
        0,
        "reconfiguration must drop no flows"
    );
    assert_eq!(
        events.iter().map(|e| e.flows as u64).sum::<u64>(),
        pushed,
        "every pushed flow lands in a processed interval"
    );
}
