//! Columnar determinism suite: the struct-of-arrays flow store must be
//! **bit-identical** to the record (array-of-structs) path everywhere it
//! is consumed — the load-bearing constraint of the columnar refactor.
//! Two families of properties assert it:
//!
//! 1. **Pipeline equivalence** — the columnar engines (a sharded
//!    `Engine::extract` offline, `ShardedExtractor::process_columns`
//!    online, and the streaming extractor that rides them) produce
//!    exactly what the record-based sequential pipeline produces, for
//!    every miner, shard count, execution context (inline vs pooled),
//!    and transaction mode.
//! 2. **Decoder equivalence** — `decode_into_columns` returns exactly
//!    what decode-then-convert returns for arbitrary datagram bytes:
//!    same header and rows on success, the same error otherwise, with
//!    the failing datagram leaving the column store untouched.

use anomex::core::{
    prefilter_indices, prefilter_indices_columns, AnomalyExtractor, Engine, ExtractRequest,
    Extraction, ExtractionConfig, ShardedExtractor, TransactionMode,
};
use anomex::netflow::v5::{self, V5Exporter, V5_HEADER_LEN, V5_RECORD_LEN};
use anomex::netflow::FlowColumns;
use anomex::prelude::*;
use anomex_core::IntervalOutcome;
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::Arc;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn table2_metadata() -> MetaData {
    let mut md = MetaData::new();
    for port in [7000u64, 80, 9022, 25] {
        md.insert(FlowFeature::DstPort, port);
    }
    md
}

/// Assert two extractions are the same to the bit.
fn assert_extractions_identical(a: &Extraction, b: &Extraction, context: &str) {
    assert_eq!(a.itemsets, b.itemsets, "{context}: itemsets diverged");
    for (x, y) in a.itemsets.iter().zip(&b.itemsets) {
        assert_eq!(x.support, y.support, "{context}: support diverged on {x}");
    }
    assert_eq!(a.levels, b.levels, "{context}: level stats diverged");
    assert_eq!(a.total_flows, b.total_flows, "{context}");
    assert_eq!(a.suspicious_flows, b.suspicious_flows, "{context}");
    assert_eq!(
        a.cost_reduction.to_bits(),
        b.cost_reduction.to_bits(),
        "{context}: cost reduction diverged"
    );
    assert_eq!(a.metadata, b.metadata, "{context}");
}

/// Assert one columnar outcome equals one record outcome, KL bits and all.
fn assert_outcomes_identical(a: &IntervalOutcome, b: &IntervalOutcome, context: &str) {
    assert_eq!(a.observation.alarm, b.observation.alarm, "{context}");
    assert_eq!(a.observation.metadata, b.observation.metadata, "{context}");
    for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
        assert_eq!(x.alarm, y.alarm, "{context}");
        assert_eq!(&x.voted_values, &y.voted_values, "{context}");
        for (cx, cy) in x.clones.iter().zip(&y.clones) {
            assert_eq!(
                cx.kl.map(f64::to_bits),
                cy.kl.map(f64::to_bits),
                "{context}"
            );
            assert_eq!(
                cx.first_diff.map(f64::to_bits),
                cy.first_diff.map(f64::to_bits),
                "{context}"
            );
        }
    }
    match (&a.extraction, &b.extraction) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_extractions_identical(x, y, context),
        _ => panic!("{context}: extraction presence diverged"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Offline: the columnar engine (a sharded `Engine::extract` converts
    /// to `FlowColumns` and walks columns end to end) extracts exactly
    /// what the record-based sequential pipeline does, for every miner,
    /// shard count (1 shard = inline execution, more = the worker pool),
    /// and transaction mode.
    #[test]
    fn columnar_extraction_matches_record_pipeline(
        seed in 0u64..10_000,
        scale_pct in 1u64..=4,
        support_div in 1u64..=4,
        shards in 1usize..=8,
        miner_idx in 0usize..3,
        extended in proptest::sample::select(vec![false, true]),
    ) {
        let w = table2_workload(seed, scale_pct as f64 * 0.01);
        let miner = MinerKind::ALL[miner_idx];
        let tx_mode = if extended {
            TransactionMode::WithPrefixes
        } else {
            TransactionMode::Canonical
        };
        let support = (w.min_support / support_div).max(1);
        let md = table2_metadata();
        let request = ExtractRequest::new(&w.flows, &md, support)
            .transactions(tx_mode)
            .miner(miner);
        let records = Engine::extract(&request);
        let columnar = Engine::extract(&request.shards(nz(shards)));
        assert_extractions_identical(
            &records,
            &columnar,
            &format!("seed={seed} miner={miner} shards={shards} extended={extended}"),
        );
    }

    /// The columnar pre-filter selects exactly the index sequence of the
    /// record pre-filter, for both union and intersection semantics.
    #[test]
    fn columnar_prefilter_matches_record_prefilter(
        seed in 0u64..10_000,
        scale_pct in 1u64..=4,
        intersection in proptest::sample::select(vec![false, true]),
    ) {
        let w = table2_workload(seed, scale_pct as f64 * 0.01);
        let mode = if intersection {
            PrefilterMode::Intersection
        } else {
            PrefilterMode::Union
        };
        let mut md = MetaData::new();
        md.insert(FlowFeature::DstPort, 7000);
        md.insert(FlowFeature::Packets, 2);
        let cols = FlowColumns::from_flows(&w.flows);
        prop_assert_eq!(
            prefilter_indices(&w.flows, &md, mode),
            prefilter_indices_columns(&cols, &md, mode)
        );
    }

    /// The columnar store round-trips records losslessly: conversion to
    /// columns and back, row access, and iteration all reproduce the
    /// original records exactly.
    #[test]
    fn columnar_store_round_trips_records(
        seed in 0u64..10_000,
        scale_pct in 1u64..=3,
    ) {
        let w = table2_workload(seed, scale_pct as f64 * 0.01);
        let cols = FlowColumns::from_flows(&w.flows);
        prop_assert_eq!(cols.len(), w.flows.len());
        prop_assert_eq!(cols.to_flows(), w.flows.clone());
        prop_assert_eq!(cols.iter().collect::<Vec<_>>(), w.flows.clone());
        if !w.flows.is_empty() {
            let i = (seed as usize) % w.flows.len();
            prop_assert_eq!(cols.get(i), w.flows[i]);
        }
    }
}

proptest! {
    // The online properties run whole scenarios (training + detection),
    // so fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Online: feeding [`FlowColumns`] straight into the sharded engine
    /// (`process_columns`) and streaming flow-by-flow through the
    /// [`StreamingExtractor`] (which rides the same columnar engine)
    /// both produce the record-based sequential pipeline's outcomes —
    /// alarms, meta-data, KL bits, and extractions — for every miner
    /// and shard count.
    #[test]
    fn columnar_online_and_streaming_match_record_pipeline(
        seed in 0u64..1_000,
        shards in 1usize..=6,
        miner_idx in 0usize..3,
    ) {
        let scenario = Scenario::small(seed);
        let config = ExtractionConfig {
            interval_ms: scenario.interval_ms(),
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 800,
            miner: MinerKind::ALL[miner_idx],
            ..ExtractionConfig::default()
        };
        let intervals = scenario.interval_count().min(22);
        let mut records = AnomalyExtractor::try_new(config.clone()).unwrap();
        let mut columnar = ShardedExtractor::try_new(config.clone(), nz(shards)).unwrap();
        let mut stream = StreamingExtractor::try_new(config, nz(shards), 0).unwrap();

        let mut events = Vec::new();
        for i in 0..intervals {
            let interval = scenario.generate(i);
            let reference = records.process_interval(&interval.flows);
            let cols = Arc::new(FlowColumns::from_flows(&interval.flows));
            let outcome = columnar.process_columns(&cols);
            assert_outcomes_identical(
                &outcome,
                &reference,
                &format!("columns seed={seed} shards={shards} interval={i}"),
            );
            // The compat shim holds on the engine's own input, too.
            prop_assert_eq!(cols.to_flows(), interval.flows.clone());
            for flow in interval.flows {
                events.extend(stream.push(flow));
            }
        }
        let (tail, _) = stream.finish();
        events.extend(tail);
        prop_assert_eq!(events.len() as u64, intervals, "one event per interval");
        // Re-run the record reference for the streamed comparison (the
        // first pass's extractor has advanced past these intervals).
        let scenario = Scenario::small(seed);
        let mut records = AnomalyExtractor::try_new(ExtractionConfig {
            interval_ms: scenario.interval_ms(),
            detector: DetectorConfig {
                training_intervals: 10,
                ..DetectorConfig::default()
            },
            min_support: 800,
            miner: MinerKind::ALL[miner_idx],
            ..ExtractionConfig::default()
        })
        .unwrap();
        for (i, event) in events.iter().enumerate() {
            let reference = records.process_interval(&scenario.generate(i as u64).flows);
            assert_outcomes_identical(
                &event.outcome,
                &reference,
                &format!("stream seed={seed} shards={shards} interval={i}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary bytes — almost always invalid — the columnar
    /// decoder returns exactly what the record decoder returns: the same
    /// header and rows on success, the same error otherwise, and an
    /// error leaves the column store untouched.
    #[test]
    fn decode_into_columns_matches_records_on_arbitrary_bytes(
        raw in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let record = v5::decode_datagram(&raw);
        let mut cols = FlowColumns::new();
        let columnar = v5::decode_into_columns(&raw, &mut cols);
        match (record, columnar) {
            (Ok(dgram), Ok(header)) => {
                prop_assert_eq!(dgram.header, header);
                prop_assert_eq!(&cols, &FlowColumns::from_flows(&dgram.flows));
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(cols.len(), 0, "a failed decode must not touch the store");
            }
            (a, b) => prop_assert!(false, "result shape diverged: {a:?} vs {b:?}"),
        }
    }

    /// For exporter-produced streams — valid, truncated at an arbitrary
    /// byte, or corrupted in the version/count fields — the columnar
    /// stream decoder appends exactly the datagrams the record decoder
    /// accepts before the first error, and returns the identical error.
    #[test]
    fn decode_stream_into_columns_matches_decode_then_convert(
        seed in 0u64..10_000,
        take in 0usize..75,
        cut in 0usize..4096,
        corruption in proptest::sample::select(vec![0u8, 1, 2, 3]),
    ) {
        let flows: Vec<FlowRecord> = table2_workload(seed, 0.01)
            .flows
            .into_iter()
            .take(take)
            .collect();
        let mut exporter = V5Exporter::new();
        let mut bytes = Vec::new();
        let mut last_start = 0;
        for dgram in exporter.export(&flows) {
            last_start = bytes.len();
            bytes.extend_from_slice(&dgram);
        }
        match corruption {
            // Truncate anywhere: mid-header, mid-records, or a no-op cut.
            1 if !bytes.is_empty() => bytes.truncate(cut % (bytes.len() + 1)),
            // Corrupt the version field of the last datagram, so any
            // earlier datagrams still decode as the accepted prefix.
            2 if !bytes.is_empty() => bytes[last_start] = 0xff,
            // Inflate the first datagram's record count past the limit.
            3 if bytes.len() >= 4 => bytes[2] = 0xff,
            _ => {}
        }

        // Record-path reference: datagram by datagram until the first error.
        let mut ref_flows: Vec<FlowRecord> = Vec::new();
        let mut ref_headers = Vec::new();
        let mut rest: &[u8] = &bytes;
        let ref_err = loop {
            if rest.is_empty() {
                break None;
            }
            match v5::decode_datagram(rest) {
                Ok(dgram) => {
                    let consumed =
                        V5_HEADER_LEN + usize::from(dgram.header.count) * V5_RECORD_LEN;
                    ref_headers.push(dgram.header);
                    ref_flows.extend(dgram.flows);
                    rest = &rest[consumed..];
                }
                Err(e) => break Some(e),
            }
        };

        let mut cols = FlowColumns::new();
        match v5::decode_stream_into_columns(&bytes, &mut cols) {
            Ok(headers) => {
                prop_assert_eq!(ref_err, None, "record path errored but columnar did not");
                prop_assert_eq!(headers, ref_headers);
            }
            Err(e) => prop_assert_eq!(Some(e), ref_err),
        }
        // Success or failure, the store holds exactly the accepted prefix.
        prop_assert_eq!(&cols, &FlowColumns::from_flows(&ref_flows));
    }
}
