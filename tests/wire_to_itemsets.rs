//! Integration: the full path from NetFlow v5 *bytes* to extracted
//! item-sets — exporter → (lossy) transport → collector → interval
//! assembly → detection → extraction.

use anomex::netflow::v5::{V5Collector, V5Exporter};
use anomex::prelude::*;

fn scenario() -> Scenario {
    Scenario::small(31)
}

fn config(interval_ms: u64) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms,
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        ..ExtractionConfig::default()
    }
}

/// Run the pipeline on flows that have round-tripped through the v5 codec
/// and compare against the direct run: byte encoding must not change the
/// result.
#[test]
fn v5_round_trip_preserves_extractions() {
    let scenario = scenario();
    let mut direct = AnomalyExtractor::try_new(config(scenario.interval_ms())).unwrap();
    let mut via_wire = AnomalyExtractor::try_new(config(scenario.interval_ms())).unwrap();

    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);

        // Direct path.
        let direct_outcome = direct.process_interval(&interval.flows);

        // Wire path: encode into datagrams, decode, process.
        let mut exporter = V5Exporter::new();
        let mut collector = V5Collector::new();
        for dgram in exporter.export(&interval.flows) {
            collector.ingest(&dgram).expect("well-formed datagram");
        }
        let decoded = collector.into_flows();
        assert_eq!(decoded, interval.flows, "interval {i} round trip");
        let wire_outcome = via_wire.process_interval(&decoded);

        assert_eq!(
            direct_outcome.observation.alarm, wire_outcome.observation.alarm,
            "interval {i} alarm mismatch"
        );
        match (direct_outcome.extraction, wire_outcome.extraction) {
            (Some(a), Some(b)) => {
                assert_eq!(a.itemsets, b.itemsets, "interval {i} item-sets");
                assert_eq!(a.suspicious_flows, b.suspicious_flows);
            }
            (None, None) => {}
            (a, b) => panic!(
                "interval {i}: one path extracted, the other did not ({} vs {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

/// Streaming interval assembly (the online mode) produces the same
/// extractions as batch processing.
#[test]
fn streaming_assembly_equals_batch() {
    let scenario = scenario();
    let interval_ms = scenario.interval_ms();

    // Batch run.
    let mut batch = AnomalyExtractor::try_new(config(interval_ms)).unwrap();
    let mut batch_extractions = Vec::new();
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        if let Some(e) = batch.process_interval(&interval.flows).extraction {
            batch_extractions.push((i, e.itemsets));
        }
    }

    // Streaming run: all flows through an IntervalAssembler.
    let mut stream = AnomalyExtractor::try_new(config(interval_ms)).unwrap();
    let mut assembler = IntervalAssembler::new(0, interval_ms);
    let mut stream_extractions = Vec::new();
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        for flow in interval.flows {
            for closed in assembler.push(flow) {
                if let Some(e) = stream.process_interval(&closed.flows).extraction {
                    stream_extractions.push((closed.index, e.itemsets));
                }
            }
        }
    }
    if let Some(closed) = assembler.flush() {
        if let Some(e) = stream.process_interval(&closed.flows).extraction {
            stream_extractions.push((closed.index, e.itemsets));
        }
    }

    assert_eq!(assembler.late_flows(), 0, "scenario flows arrive in order");
    assert_eq!(batch_extractions, stream_extractions);
}

/// Losing NetFlow datagrams (transport loss) degrades gracefully: the
/// collector reports the gap, and the pipeline still runs.
#[test]
fn datagram_loss_is_detected_and_survivable() {
    let scenario = scenario();
    let interval = scenario.generate(20); // the flood interval
    let mut exporter = V5Exporter::new();
    let dgrams = exporter.export(&interval.flows);

    let mut collector = V5Collector::new();
    for (i, dgram) in dgrams.iter().enumerate() {
        if i % 10 == 3 {
            continue; // drop every tenth datagram
        }
        collector.ingest(dgram).expect("well-formed");
    }
    let lost = collector.lost_flows();
    assert!(lost > 0, "sequence gaps must be visible");
    let flows = collector.into_flows();
    assert_eq!(flows.len() as u64 + lost, interval.flows.len() as u64);

    // The surviving 90% still mine fine.
    let mut md = MetaData::new();
    md.insert(FlowFeature::DstPort, 7000);
    let ex = anomex::core::Engine::extract(
        &anomex::core::ExtractRequest::new(&flows, &md, 500).interval(20),
    );
    assert!(
        ex.itemsets
            .iter()
            .any(|s| s.to_string().contains("dstPort=7000")),
        "flood still extracted from the lossy stream"
    );
}
