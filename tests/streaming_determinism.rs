//! Streaming determinism suite: the continuous streaming engine must be
//! **bit-identical** to batch extraction over the same flows — for every
//! miner, every pool-worker count, and arbitrary scenario seeds. The
//! streaming path adds two layers on top of the sharded engine (the
//! interval assembler and the double-buffered pipeline thread), and
//! neither may perturb a single bit of output: the assembler emits
//! exactly the windows batch slicing produces (empty windows included),
//! and the pipeline thread feeds them in order through the same
//! pool-backed engine. These properties assert the whole stack, flow by
//! flow, against the sequential reference.

use anomex::core::streaming::StreamingExtractor;
use anomex::core::{AnomalyExtractor, Extraction, ExtractionConfig, ShardedExtractor};
use anomex::prelude::*;
use anomex_core::IntervalOutcome;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn nz(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).unwrap()
}

fn config_for(scenario: &Scenario, miner: MinerKind) -> ExtractionConfig {
    ExtractionConfig {
        interval_ms: scenario.interval_ms(),
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        miner,
        ..ExtractionConfig::default()
    }
}

/// Assert two extractions are the same to the bit.
fn assert_extractions_identical(a: &Extraction, b: &Extraction, context: &str) {
    assert_eq!(a.itemsets, b.itemsets, "{context}: itemsets diverged");
    for (x, y) in a.itemsets.iter().zip(&b.itemsets) {
        assert_eq!(x.support, y.support, "{context}: support diverged on {x}");
    }
    assert_eq!(a.levels, b.levels, "{context}: level stats diverged");
    assert_eq!(a.total_flows, b.total_flows, "{context}");
    assert_eq!(a.suspicious_flows, b.suspicious_flows, "{context}");
    assert_eq!(
        a.cost_reduction.to_bits(),
        b.cost_reduction.to_bits(),
        "{context}: cost reduction diverged"
    );
    assert_eq!(a.metadata, b.metadata, "{context}");
}

/// Assert one streamed outcome equals one batch outcome, KL bits and all.
fn assert_outcomes_identical(a: &IntervalOutcome, b: &IntervalOutcome, context: &str) {
    assert_eq!(a.observation.alarm, b.observation.alarm, "{context}");
    assert_eq!(a.observation.metadata, b.observation.metadata, "{context}");
    for (x, y) in a.observation.features.iter().zip(&b.observation.features) {
        assert_eq!(x.alarm, y.alarm, "{context}");
        assert_eq!(&x.voted_values, &y.voted_values, "{context}");
        for (cx, cy) in x.clones.iter().zip(&y.clones) {
            assert_eq!(
                cx.kl.map(f64::to_bits),
                cy.kl.map(f64::to_bits),
                "{context}"
            );
            assert_eq!(
                cx.first_diff.map(f64::to_bits),
                cy.first_diff.map(f64::to_bits),
                "{context}"
            );
        }
    }
    match (&a.extraction, &b.extraction) {
        (None, None) => {}
        (Some(x), Some(y)) => assert_extractions_identical(x, y, context),
        _ => panic!("{context}: extraction presence diverged"),
    }
}

proptest! {
    // Full scenarios (training + detection) per case: few, heavy cases.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Flow-by-flow streaming through [`StreamingExtractor`] produces
    /// the same alarm stream, meta-data, bit-identical KL series, and
    /// identical extractions as the sequential batch pipeline — for
    /// every miner and pool-worker count.
    #[test]
    fn streaming_equals_batch_for_every_miner_and_shard_count(
        seed in 0u64..1_000,
        shards in 1usize..=6,
        miner_idx in 0usize..3,
    ) {
        let scenario = Scenario::small(seed);
        let miner = MinerKind::ALL[miner_idx];
        let intervals = scenario.interval_count().min(22);

        let mut batch = AnomalyExtractor::try_new(config_for(&scenario, miner)).unwrap();
        let mut stream =
            StreamingExtractor::try_new(config_for(&scenario, miner), nz(shards), 0).unwrap();

        let mut events = Vec::new();
        let mut batch_outcomes = Vec::new();
        for i in 0..intervals {
            let interval = scenario.generate(i);
            batch_outcomes.push(batch.process_interval(&interval.flows));
            for flow in interval.flows {
                events.extend(stream.push(flow));
            }
        }
        let (tail, summary) = stream.finish();
        events.extend(tail);

        prop_assert_eq!(events.len() as u64, intervals, "one event per interval");
        prop_assert_eq!(summary.intervals, intervals);
        prop_assert_eq!(summary.late_flows + summary.pre_origin_flows, 0);
        for (i, (event, reference)) in events.iter().zip(&batch_outcomes).enumerate() {
            prop_assert_eq!(event.index, i as u64);
            assert_outcomes_identical(
                &event.outcome,
                reference,
                &format!("seed={seed} miner={miner} shards={shards} interval={i}"),
            );
        }
    }

    /// The streamed event sequence is itself shard-invariant: any two
    /// pool-worker counts yield byte-for-byte the same reports.
    #[test]
    fn streamed_reports_are_shard_invariant(
        seed in 0u64..1_000,
        shards_a in 1usize..=4,
        shards_b in 5usize..=8,
    ) {
        let scenario = Scenario::small(seed);
        let intervals = scenario.interval_count().min(22);
        let run = |shards: usize| -> Vec<String> {
            let mut stream = StreamingExtractor::try_new(
                config_for(&scenario, MinerKind::Apriori),
                nz(shards),
                0,
            )
            .unwrap();
            let mut reports = Vec::new();
            for i in 0..intervals {
                for flow in scenario.generate(i).flows {
                    for event in stream.push(flow) {
                        if let Some(ex) = &event.outcome.extraction {
                            reports.push(anomex::core::render_report(ex));
                        }
                    }
                }
            }
            let (tail, _) = stream.finish();
            for event in tail {
                if let Some(ex) = &event.outcome.extraction {
                    reports.push(anomex::core::render_report(ex));
                }
            }
            reports
        };
        prop_assert_eq!(run(shards_a), run(shards_b));
    }
}

/// Dropping a mid-stream engine (pool + pipeline thread active, work in
/// flight) must join every thread without hanging or leaking — the
/// facade-level shutdown-safety check for the whole worker-pool stack.
#[test]
fn abandoned_streams_and_extractors_shut_down_cleanly() {
    let scenario = Scenario::small(3);
    for shards in [1usize, 2, 4] {
        let mut stream =
            StreamingExtractor::try_new(config_for(&scenario, MinerKind::Apriori), nz(shards), 0)
                .unwrap();
        // Enough flows to close a few intervals and keep work queued.
        for i in 0..3 {
            for flow in scenario.generate(i).flows {
                let _ = stream.push(flow);
            }
        }
        drop(stream);

        let mut sharded =
            ShardedExtractor::try_new(config_for(&scenario, MinerKind::Apriori), nz(shards))
                .unwrap();
        let _ = sharded.process_interval(&scenario.generate(0).flows);
        drop(sharded); // joins the persistent pool
    }
}
