//! Facade smoke test: the README/`src/lib.rs` quickstart as a named
//! test, so a regression in the public entry path fails
//! `smoke::quickstart_extracts_planted_flood` rather than (only) a doc
//! example.

use anomex::prelude::*;

/// Mirrors the `anomex` crate-level doctest: a `Scenario::small`
/// workload with a planted port-7000 flood must come out of the
/// pipeline as an item-set naming that port.
#[test]
fn quickstart_extracts_planted_flood() {
    let scenario = Scenario::small(7);

    let config = ExtractionConfig {
        interval_ms: scenario.interval_ms(),
        detector: DetectorConfig {
            training_intervals: 10,
            ..DetectorConfig::default()
        },
        min_support: 800,
        ..ExtractionConfig::default()
    };

    let mut pipeline = AnomalyExtractor::try_new(config).unwrap();
    let mut found = false;
    let mut extractions = 0usize;
    for i in 0..scenario.interval_count() {
        let interval = scenario.generate(i);
        if let Some(extraction) = pipeline.process_interval(&interval.flows).extraction {
            extractions += 1;
            found |= extraction
                .itemsets
                .iter()
                .any(|set| set.to_string().contains("dstPort=7000"));
        }
    }
    assert!(
        extractions > 0,
        "at least one interval must alarm and extract"
    );
    assert!(found, "the planted dstPort=7000 flood was not extracted");
}
